package bench

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

var (
	smallOnce sync.Once
	smallEnv  *Env
)

// sharedSmallEnv lazily builds one small environment for all tests.
func sharedSmallEnv(t testing.TB) *Env {
	t.Helper()
	smallOnce.Do(func() {
		smallEnv = NewEnv(SmallOptions())
	})
	return smallEnv
}

func TestEnvConstruction(t *testing.T) {
	env := sharedSmallEnv(t)
	if env.FixedC.Empty() {
		t.Fatalf("no fixed candidates selected")
	}
	if env.FixedC.Len() > env.Options.IdxCnt {
		t.Fatalf("C = %d exceeds idxCnt %d", env.FixedC.Len(), env.Options.IdxCnt)
	}
	if !env.FixedC.SubsetOf(env.Universe) {
		t.Fatalf("C not within the mined universe")
	}
	for _, sc := range env.Options.StateCnts {
		p, ok := env.Partitions[sc]
		if !ok {
			t.Fatalf("missing partition for stateCnt %d", sc)
		}
		if !p.Validate() {
			t.Fatalf("invalid partition for stateCnt %d", sc)
		}
		if !p.Union().Equal(env.FixedC) {
			t.Fatalf("partition %d does not cover C", sc)
		}
		if p.States() > sc {
			t.Fatalf("partition %d uses %d states", sc, p.States())
		}
	}
	if len(env.IBGs) != env.Workload.Len() {
		t.Fatalf("IBG count mismatch")
	}
}

func TestOptPrefixInvariants(t *testing.T) {
	env := sharedSmallEnv(t)
	n := env.Workload.Len()
	if len(env.Opt.PrefixTotal) != n+1 || len(env.Opt.Schedule) != n+1 {
		t.Fatalf("OPT result sizes wrong")
	}
	for i := 1; i <= n; i++ {
		if env.Opt.PrefixTotal[i] < env.Opt.PrefixTotal[i-1] {
			t.Fatalf("OPT prefix decreased at %d", i)
		}
		if !env.Opt.Schedule[i].SubsetOf(env.FixedC) {
			t.Fatalf("OPT schedule leaves the candidate set at %d", i)
		}
	}
	// The replayed schedule can never beat the DP optimum.
	if env.OptReplay[n] < env.Opt.PrefixTotal[n]-1e-6*env.Opt.PrefixTotal[n] {
		t.Fatalf("replay %v beats DP optimum %v", env.OptReplay[n], env.Opt.PrefixTotal[n])
	}
}

func TestRunInvariants(t *testing.T) {
	env := sharedSmallEnv(t)
	run := env.Run(RunSpec{Algo: env.NewWFITFixedAlgo("WFIT", env.Partitions[env.middle()])})
	n := env.Workload.Len()
	if len(run.TotWork) != n+1 {
		t.Fatalf("TotWork length wrong")
	}
	for i := 1; i <= n; i++ {
		if run.TotWork[i] <= run.TotWork[i-1] {
			t.Fatalf("total work not strictly increasing at %d", i)
		}
		if run.Ratio[i] <= 0 || run.Ratio[i] > 1.25 {
			t.Fatalf("ratio %v out of plausible range at %d", run.Ratio[i], i)
		}
	}
	if run.Changes == 0 {
		t.Fatalf("tuner never changed the configuration on a phased workload")
	}
	if run.TransitionCost <= 0 {
		t.Fatalf("no transition cost despite changes")
	}
}

func TestRunDeterminism(t *testing.T) {
	env := sharedSmallEnv(t)
	r1 := env.Run(RunSpec{Algo: env.NewWFITFixedAlgo("WFIT", env.Partitions[env.middle()])})
	r2 := env.Run(RunSpec{Algo: env.NewWFITFixedAlgo("WFIT", env.Partitions[env.middle()])})
	n := env.Workload.Len()
	if r1.TotWork[n] != r2.TotWork[n] || r1.Changes != r2.Changes {
		t.Fatalf("identical runs diverged: %v vs %v", r1.TotWork[n], r2.TotWork[n])
	}
}

func TestGoodFeedbackBeatsNone(t *testing.T) {
	env := sharedSmallEnv(t)
	runs := env.RunFig9()
	n := env.Workload.Len()
	good, plain := runs[0], runs[1]
	if good.TotWork[n] > plain.TotWork[n]*1.001 {
		t.Fatalf("prescient feedback made things worse: %v vs %v",
			good.TotWork[n], plain.TotWork[n])
	}
}

func TestBadFeedbackRecovers(t *testing.T) {
	env := sharedSmallEnv(t)
	runs := env.RunFig9()
	n := env.Workload.Len()
	bad := runs[2]
	// Recovery: despite adversarial votes, the final ratio stays within
	// a reasonable band of the no-feedback run.
	plain := runs[1]
	if bad.Ratio[n] < plain.Ratio[n]*0.5 {
		t.Fatalf("no recovery from bad feedback: %v vs %v", bad.Ratio[n], plain.Ratio[n])
	}
}

func TestLagReducesChanges(t *testing.T) {
	env := sharedSmallEnv(t)
	part := env.Partitions[env.middle()]
	immediate := env.Run(RunSpec{Algo: env.NewWFITFixedAlgo("T1", part)})
	lagged := env.Run(RunSpec{Algo: env.NewWFITFixedAlgo("T25", part), AcceptEvery: 25})
	if lagged.Changes > immediate.Changes {
		t.Fatalf("lagged DBA changed more often: %d vs %d", lagged.Changes, immediate.Changes)
	}
	n := env.Workload.Len()
	if lagged.TotWork[n] < immediate.TotWork[n]*0.999 {
		t.Fatalf("lag should not improve total work")
	}
}

func TestVotesForceConsistentRecommendations(t *testing.T) {
	env := sharedSmallEnv(t)
	algo := env.NewWFITFixedAlgo("WFIT", env.Partitions[env.middle()])
	votes := workload.ScheduleVotes(env.Opt.Schedule)
	at := workload.VotesAt(votes)
	for i1, s := range env.Workload.Statements {
		i := i1 + 1
		algo.Analyze(i, s, env.IBGs[i1])
		for _, v := range at[i] {
			algo.Feedback(v.Plus, v.Minus)
			rec := algo.Recommend()
			if !v.Plus.SubsetOf(rec) {
				t.Fatalf("stmt %d: positive votes %v not in recommendation", i, v.Plus)
			}
			if !rec.Disjoint(v.Minus) {
				t.Fatalf("stmt %d: negative votes %v still recommended", i, v.Minus)
			}
		}
	}
}

func TestOverheadReport(t *testing.T) {
	env := sharedSmallEnv(t)
	o := env.RunOverhead()
	if o.Statements != env.Workload.Len() {
		t.Fatalf("statement count wrong")
	}
	if o.TotalWhatIf <= 0 {
		t.Fatalf("no what-if calls recorded")
	}
	if o.WhatIfPerStmt.Mean <= 0 || o.WhatIfPerStmt.Max < o.WhatIfPerStmt.Min {
		t.Fatalf("nonsensical overhead stats: %+v", o.WhatIfPerStmt)
	}
}

func TestNewOverhead(t *testing.T) {
	o := NewOverhead([]int{5, 1, 9, 3, 7})
	if o.Min != 1 || o.Max != 9 || o.Mean != 5 {
		t.Fatalf("overhead stats wrong: %+v", o)
	}
	if NewOverhead(nil) != (Overhead{}) {
		t.Fatalf("empty overhead not zero")
	}
}

// TestShapesMedium checks the qualitative Figure-8 ordering on a medium
// environment: WFIT must beat both the independence variant and BC.
func TestShapesMedium(t *testing.T) {
	if testing.Short() {
		t.Skip("medium environment takes ~15s")
	}
	opts := SmallOptions()
	opts.Workload.Phases = 4
	opts.Workload.PerPhase = 100
	opts.IdxCnt = 24
	opts.StateCnts = []int{1000, 200}
	env := NewEnv(opts)
	n := env.Workload.Len()

	wfit := env.Run(RunSpec{Algo: env.NewWFITFixedAlgo("WFIT", env.Partitions[1000])})
	ind := env.Run(RunSpec{Algo: env.NewWFITIndAlgo("WFIT-IND")})
	bc := env.Run(RunSpec{Algo: env.NewBCAlgo("BC")})

	if wfit.Ratio[n] < 0.6 {
		t.Errorf("WFIT ratio %v unexpectedly low", wfit.Ratio[n])
	}
	if wfit.Ratio[n] < ind.Ratio[n] {
		t.Errorf("WFIT (%v) below WFIT-IND (%v)", wfit.Ratio[n], ind.Ratio[n])
	}
	if wfit.Ratio[n] < bc.Ratio[n] {
		t.Errorf("WFIT (%v) below BC (%v)", wfit.Ratio[n], bc.Ratio[n])
	}
}
