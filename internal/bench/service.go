package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/workload"
)

// ServiceOptions configures the service-mode loadgen: K concurrent
// sessions driving one wfit-serve instance over HTTP, each streaming its
// own contiguous slice of the benchmark workload.
type ServiceOptions struct {
	// DataDir roots the server's persisted state (required).
	DataDir string
	// Sessions is the number of concurrent sessions (default 4).
	Sessions int
	// PerSession is the number of statements each session ingests
	// (default 100).
	PerSession int
	// BatchSize is the number of statements per ingest request (default
	// 1, which makes each recorded latency one statement's ingest).
	BatchSize int
	// IdxCnt and StateCnt are the per-session tuner knobs (defaults 16
	// and 200 — service-bench scale, not the paper's full 40/500).
	IdxCnt, StateCnt int
	// CheckpointEvery controls automatic snapshots (default 200).
	CheckpointEvery int
	// Seed drives workload generation.
	Seed int64
	// Metrics, when set, wires the registry into the benched server —
	// stage histograms, trace rings, and /metrics all on. Nil runs the
	// server uninstrumented (the observability overhead A/B knob).
	Metrics *obs.Registry
	// Inspect, when set, runs against the live server's base URL after
	// every session finished ingesting and before shutdown (the obs
	// bench reads /metrics and the trace endpoint here).
	Inspect func(baseURL string) error
}

func (o *ServiceOptions) applyDefaults() {
	if o.Sessions <= 0 {
		o.Sessions = 4
	}
	if o.PerSession <= 0 {
		o.PerSession = 100
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 1
	}
	if o.IdxCnt <= 0 {
		o.IdxCnt = 16
	}
	if o.StateCnt <= 0 {
		o.StateCnt = 200
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 200
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// ServicePerf is the service-mode section of the BENCH trajectory: the
// client-observed per-statement ingest latency distribution (queueing
// included — this is what a DBA's tooling experiences under backpressure)
// and per-session outcomes.
type ServicePerf struct {
	Sessions   int `json:"sessions"`
	PerSession int `json:"statements_per_session"`
	BatchSize  int `json:"batch_size"`
	// WallMS is the wall time for all sessions to stream their slices.
	WallMS float64 `json:"wall_ms"`
	// IngestPerSec is total statements ingested / wall time.
	IngestPerSec float64 `json:"ingest_stmts_per_sec"`
	// IngestUS* summarize the client-observed per-statement latency.
	IngestUSMean float64 `json:"ingest_us_mean"`
	IngestUSP50  float64 `json:"ingest_us_p50"`
	IngestUSP90  float64 `json:"ingest_us_p90"`
	IngestUSP99  float64 `json:"ingest_us_p99"`
	IngestUSMax  float64 `json:"ingest_us_max"`
	// PerStmtIngestUS is the full latency trajectory, sessions
	// interleaved in completion order within each session's slice order.
	PerStmtIngestUS []float64 `json:"per_stmt_ingest_us"`
	// SessionTotalWork and SessionStatements are the per-session final
	// accounts as reported by /status (name order).
	SessionTotalWork  []float64 `json:"session_total_work"`
	SessionStatements []int     `json:"session_statements"`
}

// RunService starts an in-process wfit-serve over DataDir, fans Sessions
// concurrent clients out against it, and records per-statement ingest
// latency. The server is driven purely over HTTP — the measured path is
// exactly what a remote client sees.
func RunService(o ServiceOptions) (*ServicePerf, error) {
	o.applyDefaults()
	if o.DataDir == "" {
		return nil, fmt.Errorf("bench: ServiceOptions.DataDir is required")
	}

	sv, err := server.New(server.Config{
		DataDir:         o.DataDir,
		CheckpointEvery: o.CheckpointEvery,
		Metrics:         o.Metrics,
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(sv.Handler())
	defer func() {
		ts.Close()
		sv.Close()
	}()

	// One workload, sliced contiguously per session.
	cat, joins := datagen.Build()
	wopts := workload.DefaultOptions()
	wopts.Seed = o.Seed
	need := o.Sessions * o.PerSession
	wopts.Phases = (need+wopts.PerPhase-1)/wopts.PerPhase + 1
	wl := workload.Generate(cat, joins, wopts)
	if wl.Len() < need {
		return nil, fmt.Errorf("bench: workload too short (%d < %d)", wl.Len(), need)
	}

	perf := &ServicePerf{
		Sessions:   o.Sessions,
		PerSession: o.PerSession,
		BatchSize:  o.BatchSize,
	}
	latencies := make([][]float64, o.Sessions)
	errs := make([]error, o.Sessions)

	start := time.Now()
	var wg sync.WaitGroup
	for k := 0; k < o.Sessions; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			name := fmt.Sprintf("load-%d", k)
			if err := createSession(ts.URL, name, o, int64(k+1)); err != nil {
				errs[k] = err
				return
			}
			slice := wl.Statements[k*o.PerSession : (k+1)*o.PerSession]
			lats := make([]float64, 0, len(slice))
			for at := 0; at < len(slice); at += o.BatchSize {
				end := at + o.BatchSize
				if end > len(slice) {
					end = len(slice)
				}
				sqls := make([]string, 0, end-at)
				for _, s := range slice[at:end] {
					sqls = append(sqls, s.SQL)
				}
				t0 := time.Now()
				if err := postJSON(ts.URL+"/sessions/"+name+"/sql", map[string]any{"sql": sqls}, nil); err != nil {
					errs[k] = fmt.Errorf("session %s batch at %d: %w", name, at, err)
					return
				}
				us := float64(time.Since(t0).Microseconds()) / float64(end-at)
				for i := at; i < end; i++ {
					lats = append(lats, us)
				}
			}
			latencies[k] = lats
		}(k)
	}
	wg.Wait()
	perf.WallMS = float64(time.Since(start).Microseconds()) / 1e3
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	for k := 0; k < o.Sessions; k++ {
		perf.PerStmtIngestUS = append(perf.PerStmtIngestUS, latencies[k]...)
	}
	n := len(perf.PerStmtIngestUS)
	if n > 0 {
		sorted := append([]float64(nil), perf.PerStmtIngestUS...)
		sort.Float64s(sorted)
		total := 0.0
		for _, us := range sorted {
			total += us
		}
		perf.IngestUSMean = total / float64(n)
		perf.IngestUSP50 = sorted[n/2]
		perf.IngestUSP90 = sorted[n*9/10]
		perf.IngestUSP99 = sorted[n*99/100]
		perf.IngestUSMax = sorted[n-1]
		perf.IngestPerSec = float64(n) / (perf.WallMS / 1e3)
	}

	for k := 0; k < o.Sessions; k++ {
		var status struct {
			Statements int     `json:"statements"`
			TotalWork  float64 `json:"total_work"`
		}
		if err := getJSON(ts.URL+fmt.Sprintf("/sessions/load-%d/status", k), &status); err != nil {
			return nil, err
		}
		if status.Statements != o.PerSession {
			return nil, fmt.Errorf("bench: session load-%d ingested %d statements, want %d", k, status.Statements, o.PerSession)
		}
		perf.SessionStatements = append(perf.SessionStatements, status.Statements)
		perf.SessionTotalWork = append(perf.SessionTotalWork, status.TotalWork)
	}
	if o.Inspect != nil {
		if err := o.Inspect(ts.URL); err != nil {
			return nil, err
		}
	}
	return perf, nil
}

func createSession(base, name string, o ServiceOptions, seed int64) error {
	body := map[string]any{
		"name":      name,
		"idx_cnt":   o.IdxCnt,
		"state_cnt": o.StateCnt,
		"seed":      seed,
	}
	return postJSON(base+"/sessions", body, nil)
}

func postJSON(url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(req, out)
}

func getJSON(url string, out any) error {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(req, out)
}

func doJSON(req *http.Request, out any) error {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("%s %s: %d: %s", req.Method, req.URL.Path, resp.StatusCode, bytes.TrimSpace(data))
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

// serviceOptionsFor scales the loadgen to the environment: small
// environments get the small service bench.
func (e *Env) serviceOptionsFor(dataDir string) ServiceOptions {
	o := ServiceOptions{DataDir: dataDir, Seed: e.Options.Workload.Seed}
	if e.Options.Workload.PerPhase < 100 {
		o.PerSession = 50
	}
	return o
}

// RunServicePerf runs the service loadgen against a temp data dir scaled
// to this environment and returns its perf section.
func (e *Env) RunServicePerf(dataDir string) (*ServicePerf, error) {
	return RunService(e.serviceOptionsFor(dataDir))
}
