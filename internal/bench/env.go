// Package bench is the experiment harness: it reconstructs the paper's
// experimental setup (§6.1) — benchmark catalog, phased workload, fixed
// candidate set and stable partition, per-statement index benefit graphs,
// and the OPT baseline — and evaluates tuning algorithms with the total
// work metric, normalized as totWork(OPT)/totWork(A).
package bench

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/ibg"
	"repro/internal/index"
	"repro/internal/interaction"
	"repro/internal/opt"
	"repro/internal/par"
	"repro/internal/stmt"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// Options configures environment construction.
type Options struct {
	// Workload generation parameters (phases, statements, seed).
	Workload workload.Options
	// IdxCnt is the size of the fixed candidate set C (paper: 40).
	IdxCnt int
	// StateCnts lists the stable-partition granularities to prepare
	// (paper: 2000, 500, 100). The first entry is the finest and is used
	// for the OPT baseline.
	StateCnts []int
	// Seed drives partitioning randomness.
	Seed int64
	// Workers bounds the goroutines used for environment construction
	// (candidate mining, per-statement IBGs) and for RunAll's concurrent
	// experiment evaluation. 1 forces serial execution; <= 0 means one
	// per CPU. Results are identical for any setting.
	Workers int
}

// DefaultOptions mirrors the paper's experimental configuration.
func DefaultOptions() Options {
	return Options{
		Workload:  workload.DefaultOptions(),
		IdxCnt:    40,
		StateCnts: []int{2000, 500, 100},
		Seed:      7,
	}
}

// SmallOptions returns a scaled-down environment for unit tests: two
// phases of 40 statements and a 16-index candidate set.
func SmallOptions() Options {
	w := workload.DefaultOptions()
	w.Phases = 2
	w.PerPhase = 40
	w.QueryTemplates = 6
	w.UpdateTemplates = 2
	return Options{
		Workload:  w,
		IdxCnt:    16,
		StateCnts: []int{500, 100},
		Seed:      7,
	}
}

// Env is a fully constructed experimental environment. After construction
// it is read-only and safe to share across concurrent runs: the
// per-statement IBGs fill their memo with atomic writes of deterministic
// values, and every other field is immutable. RunAll exploits this by
// evaluating independent algorithms concurrently.
type Env struct {
	Options Options

	Cat      *catalog.Catalog
	Joins    []datagen.Join
	Reg      *index.Registry
	Model    *cost.Model
	Workload *workload.Workload

	// Universe holds every candidate mined by the offline pass.
	Universe index.Set
	// FixedC is the fixed candidate set (top IdxCnt by workload benefit).
	FixedC index.Set
	// Partitions maps stateCnt to the stable partition of FixedC built
	// with that bound.
	Partitions map[int]interaction.Partition
	// IBGs[i] is the index benefit graph of statement i over FixedC.
	IBGs []*ibg.Graph
	// Opt is the offline optimum over the finest partition.
	Opt *opt.Result
	// OptReplay prices OPT's full-workload schedule with true costs; the
	// gap against Opt.PrefixTotal measures the stable-partition
	// decomposition error in the OPT baseline.
	OptReplay []float64
	// AvgDoi exposes the offline interaction estimates (per pair totals).
	AvgDoi interaction.DoiFunc
}

// NewEnv constructs the environment. Construction cost is dominated by
// the offline candidate-mining pass (one IBG per statement over the full
// universe), mirroring how the paper derived its fixed configuration from
// the DB2 advisor plus an offline chooseCands variant.
func NewEnv(o Options) *Env {
	cat, joins := datagen.Build()
	reg := index.NewRegistry()
	model := cost.NewModel(cat, reg, cost.DefaultParams())
	wl := workload.Generate(cat, joins, o.Workload)

	e := &Env{
		Options:  o,
		Cat:      cat,
		Joins:    joins,
		Reg:      reg,
		Model:    model,
		Workload: wl,
	}
	e.chooseFixedCandidates()
	e.internUpdateCandidates()
	e.buildEvaluationIBGs()
	e.buildPartitions()
	e.buildOpt()
	return e
}

// internUpdateCandidates pre-interns the candidates every non-query
// statement can contribute. Candidate mining deliberately uses only the
// read-only workload portion (the paper's U), but a full WFIT run extracts
// candidates from updates too; interning them here — queries first, then
// updates, matching the order a serial run would have assigned IDs —
// makes the registry read-only for the rest of the environment's life, so
// concurrent runs (RunAll) never mutate shared state and ID assignment
// never depends on run scheduling.
func (e *Env) internUpdateCandidates() {
	ex := cost.NewExtractor(e.Model)
	for _, s := range e.Workload.Statements {
		if s.Kind != stmt.Query {
			ex.Extract(s)
		}
	}
}

// chooseFixedCandidates runs the offline candidate selection: mine
// candidates from the read-only portion of the workload, then greedily
// select the IdxCnt indices with the largest *marginal* whole-workload
// benefit given the ones already selected (maintenance penalties
// included). Marginal selection is what a DBMS advisor effectively does;
// ranking by standalone benefit instead would fill C with near-substitute
// indices for the same few access patterns — wasting monitored slots and
// making every feasible stable partition drop large interaction mass.
func (e *Env) chooseFixedCandidates() {
	ex := cost.NewExtractor(e.Model)
	universe := index.EmptySet
	for _, s := range e.Workload.Statements {
		if s.Kind != stmt.Query {
			continue // the paper mined U from the read-only portion
		}
		universe = universe.Union(ex.Extract(s))
	}
	e.Universe = universe

	// One IBG per statement over the whole universe answers every
	// cost(q, X) probe the greedy selection needs. Graph construction is
	// the dominant cost of the offline pass and each statement's graph is
	// independent, so the builds fan out across the worker pool; the
	// statistics are then folded in statement order, keeping the floating-
	// point sums identical to a serial pass.
	wfOpt := whatif.New(e.Model)
	graphs := par.Map(e.Options.Workers, len(e.Workload.Statements), func(i int) *ibg.Graph {
		return ibg.Build(wfOpt, e.Workload.Statements[i], universe)
	})
	influencedBy := make(map[index.ID][]int) // candidate -> statement indices
	benefitTotal := make(map[index.ID]float64)
	for i, g := range graphs {
		g.UsedUnion().Each(func(a index.ID) {
			influencedBy[a] = append(influencedBy[a], i)
			if b := g.MaxBenefit(a); b > 0 {
				benefitTotal[a] += b
			}
		})
	}

	// Candidates in deterministic order.
	var candidates []index.ID
	universe.Each(func(a index.ID) {
		if len(influencedBy[a]) > 0 {
			candidates = append(candidates, a)
		}
	})

	// Stage 1 — pattern representatives (~60% of C): greedy marginal
	// selection so every important access pattern is covered.
	repBudget := e.Options.IdxCnt * 3 / 5
	curCost := make([]float64, len(graphs))
	for i, g := range graphs {
		curCost[i] = g.Cost(index.EmptySet)
	}
	selected := index.EmptySet
	for selected.Len() < repBudget {
		// Marginal gains of the remaining candidates are independent
		// probes against frozen graphs; compute them in parallel, then
		// pick the winner serially in candidate order so tie-breaking
		// matches the serial pass exactly.
		gains := par.Map(e.Options.Workers, len(candidates), func(k int) float64 {
			a := candidates[k]
			if selected.Contains(a) {
				return 0
			}
			gain := 0.0
			trial := selected.Add(a)
			for _, i := range influencedBy[a] {
				gain += curCost[i] - graphs[i].Cost(trial)
			}
			return gain
		})
		bestGain := 0.0
		var bestID index.ID
		for k, a := range candidates {
			if selected.Contains(a) {
				continue
			}
			gain := gains[k]
			if gain > bestGain || (gain == bestGain && bestID != index.Invalid && a < bestID) {
				bestGain = gain
				bestID = a
			}
		}
		if bestID == index.Invalid || bestGain <= 0 {
			break // nothing left with positive marginal benefit
		}
		selected = selected.Add(bestID)
		for _, i := range influencedBy[bestID] {
			curCost[i] = graphs[i].Cost(selected)
		}
	}

	// Stage 2 — alternatives: fill the remaining slots by standalone
	// workload benefit. These are often near-substitutes of stage-1
	// picks (alternative column orders, intersection partners); they are
	// exactly the indices whose interactions WFIT must reason about and
	// whose benefits the independence assumption over-counts. Family
	// sizes are capped so the strongest interactions still fit inside
	// feasible parts.
	type scored struct {
		id  index.ID
		ben float64
	}
	var ranked []scored
	for _, a := range candidates {
		if b := benefitTotal[a]; b > 0 {
			ranked = append(ranked, scored{a, b})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].ben != ranked[j].ben {
			return ranked[i].ben > ranked[j].ben
		}
		return ranked[i].id < ranked[j].id
	})
	familySize := func(a index.ID) int {
		def := e.Reg.Get(a)
		n := 0
		selected.Each(func(b index.ID) {
			other := e.Reg.Get(b)
			if other.Table == def.Table && other.LeadingColumn() == def.LeadingColumn() {
				n++
			}
		})
		return n
	}
	for _, entry := range ranked {
		if selected.Len() >= e.Options.IdxCnt {
			break
		}
		if selected.Contains(entry.id) {
			continue
		}
		if familySize(entry.id) >= 2 {
			continue // cap alternatives per (table, leading column)
		}
		selected = selected.Add(entry.id)
	}
	e.FixedC = selected
}

// buildEvaluationIBGs builds one IBG per statement over FixedC; they price
// configurations for WFA/BC/OPT during runs without optimizer calls. The
// per-statement builds are independent and fan out across the worker pool.
func (e *Env) buildEvaluationIBGs() {
	wfOpt := whatif.New(e.Model)
	e.IBGs = par.Map(e.Options.Workers, len(e.Workload.Statements), func(i int) *ibg.Graph {
		return ibg.Build(wfOpt, e.Workload.Statements[i], e.FixedC)
	})
}

// buildPartitions accumulates whole-workload interaction totals in the
// C-restricted world — the configuration space the algorithms and OPT
// actually select from — and partitions C per stateCnt bound. Using
// C-restricted statistics matters: an interaction between two candidates
// can be masked in the full universe (a stronger third index dominates
// both) yet decisive once recommendations are confined to C, and the
// partition's loss is exactly the decomposition error OPT's dynamic
// program incurs.
func (e *Env) buildPartitions() {
	// Per-graph interaction mining is independent; the totals are folded
	// in statement order so the floating-point sums stay deterministic.
	perGraph := par.Map(e.Options.Workers, len(e.IBGs), func(i int) []ibg.Interaction {
		return e.IBGs[i].Interactions(1e-6)
	})
	doiTotal := make(map[interaction.Pair]float64)
	for _, ins := range perGraph {
		for _, in := range ins {
			doiTotal[interaction.MakePair(in.A, in.B)] += in.Doi
		}
	}
	// Ignore weak interactions (§2): an interaction whose cumulative
	// magnitude is small next to the cost of rebuilding either index
	// cannot meaningfully change materialization decisions, and merging
	// on such noise produces oversized, sluggish parts.
	e.AvgDoi = func(a, b index.ID) float64 {
		total := doiTotal[interaction.MakePair(a, b)]
		floor := 0.05 * math.Min(e.Reg.CreateCost(a), e.Reg.CreateCost(b))
		if total < floor {
			return 0
		}
		return total
	}
	e.Partitions = make(map[int]interaction.Partition, len(e.Options.StateCnts))
	for _, sc := range e.Options.StateCnts {
		pt := &interaction.Partitioner{
			StateCnt:    sc,
			MaxPartSize: 14,
			RandCnt:     16,
			Rand:        rand.New(rand.NewSource(e.Options.Seed)),
		}
		e.Partitions[sc] = pt.Choose(e.FixedC, nil, e.AvgDoi)
	}
}

// buildOpt runs the offline dynamic program on the finest partition.
func (e *Env) buildOpt() {
	finest := e.Options.StateCnts[0]
	costers := make([]core.StatementCost, len(e.IBGs))
	for i, g := range e.IBGs {
		costers[i] = g
	}
	e.Opt = opt.Compute(opt.Input{
		Reg:       e.Reg,
		Partition: e.Partitions[finest],
		S0:        index.EmptySet,
		Costers:   costers,
	})
	e.OptReplay = opt.Replay(e.Reg, e.Opt.Schedule, costers)
}
