package bench

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// finest returns the finest configured partition granularity.
func (e *Env) finest() int { return e.Options.StateCnts[0] }

// coarsest returns the coarsest configured granularity.
func (e *Env) coarsest() int {
	return e.Options.StateCnts[len(e.Options.StateCnts)-1]
}

// middle returns the middle granularity (the paper's default 500), falling
// back to the finest when only one is configured.
func (e *Env) middle() int {
	if len(e.Options.StateCnts) >= 2 {
		return e.Options.StateCnts[1]
	}
	return e.Options.StateCnts[0]
}

// RunFig8 reproduces Figure 8: baseline recommendation quality of WFIT at
// several stateCnt granularities, WFIT-IND, and BC, all normalized by
// OPT. The runs are independent and evaluate concurrently.
func (e *Env) RunFig8() []*RunResult {
	var specs []RunSpec
	for _, sc := range e.Options.StateCnts {
		name := fmt.Sprintf("WFIT-%d", sc)
		specs = append(specs, RunSpec{Algo: e.NewWFITFixedAlgo(name, e.Partitions[sc])})
	}
	specs = append(specs,
		RunSpec{Algo: e.NewWFITIndAlgo("WFIT-IND")},
		RunSpec{Algo: e.NewBCAlgo("BC")})
	return e.RunAll(specs...)
}

// RunFig9 reproduces Figure 9: the effect of prescient good feedback and
// adversarial bad feedback on WFIT (stateCnt = middle granularity).
func (e *Env) RunFig9() []*RunResult {
	part := e.Partitions[e.middle()]
	good := workload.VotesAt(workload.ScheduleVotes(e.Opt.Schedule))
	bad := workload.VotesAt(workload.InvertVotes(workload.ScheduleVotes(e.Opt.Schedule)))

	return e.RunAll(
		RunSpec{Algo: e.NewWFITFixedAlgo("GOOD", part), Votes: good},
		RunSpec{Algo: e.NewWFITFixedAlgo("WFIT", part)},
		RunSpec{Algo: e.NewWFITFixedAlgo("BAD", part), Votes: bad},
	)
}

// RunFig10 reproduces Figure 10: good feedback under the independence
// assumption, where the DBA's votes compensate for WFIT's inaccurate
// internal statistics.
func (e *Env) RunFig10() []*RunResult {
	good := workload.VotesAt(workload.ScheduleVotes(e.Opt.Schedule))
	return e.RunAll(
		RunSpec{Algo: e.NewWFITIndAlgo("GOOD-IND"), Votes: good},
		RunSpec{Algo: e.NewWFITIndAlgo("WFIT-IND")},
	)
}

// RunFig11 reproduces Figure 11: delayed acceptance, where the DBA only
// requests and accepts recommendations every T statements (T = 1 grants
// WFIT full autonomy).
func (e *Env) RunFig11() []*RunResult {
	part := e.Partitions[e.middle()]
	lags := []int{1, 25, 50, 75}
	var specs []RunSpec
	for _, lag := range lags {
		name := "WFIT"
		if lag > 1 {
			name = fmt.Sprintf("LAG %d", lag)
		}
		specs = append(specs, RunSpec{
			Algo:        e.NewWFITFixedAlgo(name, part),
			AcceptEvery: lag,
		})
	}
	return e.RunAll(specs...)
}

// Fig12Result bundles the AUTO-vs-FIXED comparison with the candidate-
// maintenance statistics the paper reports in §6.2.
type Fig12Result struct {
	Runs          []*RunResult
	CandidateCnt  int // candidates mined online (paper: ~300)
	Repartitions  int // partition changes (paper: 147)
	WhatIfCalls   int64
	WhatIfPerStmt Overhead
}

// RunFig12 reproduces Figure 12: full WFIT with automatic candidate and
// partition maintenance (AUTO) versus the fixed-partition variant (FIXED).
func (e *Env) RunFig12() *Fig12Result {
	options := core.DefaultOptions()
	options.IdxCnt = e.Options.IdxCnt
	options.StateCnt = e.middle()
	options.Workers = 1 // run-level concurrency already covers the CPUs
	auto := e.NewWFITAutoAlgo("AUTO", options)
	fixed := e.NewWFITFixedAlgo("FIXED", e.Partitions[e.middle()])
	runs := e.RunAll(RunSpec{Algo: auto}, RunSpec{Algo: fixed})

	st := auto.Engine().Status()
	return &Fig12Result{
		Runs:          runs,
		CandidateCnt:  st.UniverseSize,
		Repartitions:  st.Repartitions,
		WhatIfCalls:   auto.WhatIfCalls(),
		WhatIfPerStmt: NewOverhead(auto.IBGNodeCounts()),
	}
}

// Overhead summarizes a per-statement count distribution.
type Overhead struct {
	Min, Max, Mean float64
	P50, P90       float64
}

// NewOverhead computes distribution statistics.
func NewOverhead(counts []int) Overhead {
	if len(counts) == 0 {
		return Overhead{}
	}
	sorted := append([]int(nil), counts...)
	sort.Ints(sorted)
	total := 0
	for _, c := range sorted {
		total += c
	}
	return Overhead{
		Min:  float64(sorted[0]),
		Max:  float64(sorted[len(sorted)-1]),
		Mean: float64(total) / float64(len(sorted)),
		P50:  float64(sorted[len(sorted)/2]),
		P90:  float64(sorted[len(sorted)*9/10]),
	}
}

// OverheadReport is the §6.2 overhead experiment: analysis time per
// statement and what-if optimizer calls per statement for the full WFIT.
type OverheadReport struct {
	PerStmtAnalysis time.Duration
	WhatIfPerStmt   Overhead
	TotalWhatIf     int64
	Statements      int
}

// RunOverhead measures tuning overhead with the full WFIT (the deployment
// configuration, where WFIT performs its own what-if calls).
func (e *Env) RunOverhead() *OverheadReport {
	options := core.DefaultOptions()
	options.IdxCnt = e.Options.IdxCnt
	options.StateCnt = e.middle()
	options.Workers = e.Options.Workers
	auto := e.NewWFITAutoAlgo("AUTO", options)
	run := e.Run(RunSpec{Algo: auto})
	n := len(e.Workload.Statements)
	return &OverheadReport{
		PerStmtAnalysis: run.AnalyzeTime / time.Duration(n),
		WhatIfPerStmt:   NewOverhead(auto.IBGNodeCounts()),
		TotalWhatIf:     auto.WhatIfCalls(),
		Statements:      n,
	}
}
