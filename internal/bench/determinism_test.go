package bench

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/whatif"
)

var (
	detEnvOnce sync.Once
	detEnv     *Env
)

// determinismEnv shares one small environment across the determinism
// tests (construction itself runs with the parallel default, so building
// it under -race also exercises the concurrent construction paths).
func determinismEnv(t *testing.T) *Env {
	t.Helper()
	detEnvOnce.Do(func() { detEnv = NewEnv(SmallOptions()) })
	return detEnv
}

// TestWFITParallelIdenticalToSerial drives two full WFIT tuners — one
// pinned to the serial path, one fanned across 8 workers — over the same
// workload and requires identical observable state after every statement:
// same recommendation, same IBG size (= what-if budget), and at the end
// the same candidate universe and repartition count. This is the paper's
// Theorem 4.2 decomposition made testable: parts are independent, so
// parallel evaluation must be bit-identical, not just statistically close.
func TestWFITParallelIdenticalToSerial(t *testing.T) {
	env := determinismEnv(t)
	mk := func(workers int) *core.WFIT {
		options := core.DefaultOptions()
		options.IdxCnt = env.Options.IdxCnt
		options.StateCnt = env.middle()
		options.Workers = workers
		return core.NewWFIT(whatif.New(env.Model), options)
	}
	serial, parallel := mk(1), mk(8)
	for i, s := range env.Workload.Statements {
		serial.AnalyzeQuery(s)
		parallel.AnalyzeQuery(s)
		if !serial.Recommend().Equal(parallel.Recommend()) {
			t.Fatalf("statement %d: recommendations diverge: %v vs %v",
				i+1, serial.Recommend(), parallel.Recommend())
		}
		if serial.LastIBGNodes() != parallel.LastIBGNodes() {
			t.Fatalf("statement %d: IBG sizes diverge: %d vs %d",
				i+1, serial.LastIBGNodes(), parallel.LastIBGNodes())
		}
	}
	if serial.UniverseSize() != parallel.UniverseSize() {
		t.Fatalf("universe sizes diverge: %d vs %d", serial.UniverseSize(), parallel.UniverseSize())
	}
	if serial.Repartitions() != parallel.Repartitions() {
		t.Fatalf("repartition counts diverge: %d vs %d", serial.Repartitions(), parallel.Repartitions())
	}
}

// TestWFAPlusParallelIdenticalToSerial compares the fixed-partition
// variant part by part: after the whole workload, every configuration's
// unnormalized work-function value must match to the last bit.
func TestWFAPlusParallelIdenticalToSerial(t *testing.T) {
	env := determinismEnv(t)
	partition := env.Partitions[env.middle()]
	serial := core.NewWFAPlus(env.Reg, partition, index.EmptySet)
	serial.SetWorkers(1)
	parallel := core.NewWFAPlus(env.Reg, partition, index.EmptySet)
	parallel.SetWorkers(8)

	for i, g := range env.IBGs {
		serial.AnalyzeStatement(g)
		parallel.AnalyzeStatement(g)
		if !serial.Recommend().Equal(parallel.Recommend()) {
			t.Fatalf("statement %d: recommendations diverge: %v vs %v",
				i+1, serial.Recommend(), parallel.Recommend())
		}
	}
	for k, sp := range serial.Parts() {
		pp := parallel.Parts()[k]
		if !sp.Candidates().Equal(pp.Candidates()) {
			t.Fatalf("part %d: candidate sets diverge", k)
		}
		for mask := uint32(0); mask < uint32(sp.Size()); mask++ {
			cfg := sp.SetOf(mask)
			if sv, pv := sp.TrueWorkValue(cfg), pp.TrueWorkValue(cfg); sv != pv {
				t.Fatalf("part %d cfg %v: work values diverge: %v vs %v", k, cfg, sv, pv)
			}
		}
	}
}

// TestRunAllIdenticalToSequentialRuns checks the harness layer: evaluating
// algorithms concurrently over the shared environment yields exactly the
// trajectories sequential evaluation produces.
func TestRunAllIdenticalToSequentialRuns(t *testing.T) {
	env := determinismEnv(t)
	specs := func() []RunSpec {
		return []RunSpec{
			{Algo: env.NewWFITFixedAlgo("WFIT", env.Partitions[env.middle()])},
			{Algo: env.NewWFITIndAlgo("IND")},
			{Algo: env.NewBCAlgo("BC")},
		}
	}
	var sequential []*RunResult
	for _, spec := range specs() {
		sequential = append(sequential, env.Run(spec))
	}
	concurrent := env.RunAll(specs()...)
	for k := range sequential {
		s, c := sequential[k], concurrent[k]
		if s.Name != c.Name || s.Changes != c.Changes || !s.FinalConfig.Equal(c.FinalConfig) {
			t.Fatalf("run %s: outcomes diverge", s.Name)
		}
		for i := range s.TotWork {
			if s.TotWork[i] != c.TotWork[i] {
				t.Fatalf("run %s: total work diverges at statement %d: %v vs %v",
					s.Name, i, s.TotWork[i], c.TotWork[i])
			}
		}
	}
}
