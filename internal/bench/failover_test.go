package bench

import "testing"

// TestRunFailoverSmall drives the replicated-pair kill test at test
// scale: the client must ride out the promotion with zero acknowledged
// statements lost and finish the stream on the promoted standby.
func TestRunFailoverSmall(t *testing.T) {
	p, err := RunFailover(FailoverOptions{
		DataDir:    t.TempDir(),
		Statements: 40,
		FailAt:     20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.LostAcked != 0 {
		t.Fatalf("lost %d acknowledged statements across failover", p.LostAcked)
	}
	if p.AckedBeforeKill != 20 || p.OnStandbyAtPromotion < 20 {
		t.Fatalf("acked accounting wrong: acked %d, on standby %d", p.AckedBeforeKill, p.OnStandbyAtPromotion)
	}
	if p.BlipMS <= 0 {
		t.Fatalf("no failover blip measured (blip %.2f ms)", p.BlipMS)
	}
	if p.LagSamples == 0 || p.LagMax != 0 {
		t.Fatalf("sync replication lag should sample as zero: %d samples, max %d", p.LagSamples, p.LagMax)
	}
	if p.SteadyUSP50 <= 0 || p.PostUSP50 <= 0 {
		t.Fatalf("latency summaries empty: steady p50 %.0f, post p50 %.0f", p.SteadyUSP50, p.PostUSP50)
	}
}
