package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/state"
	"repro/internal/whatif"
	"repro/internal/workload"
)

// SoakOptions configures the long-horizon soak scenario: a rotating-
// schema statement stream far longer than the paper's 1600-statement
// study, driven through the full WFIT with candidate retirement and
// periodic registry compaction, to demonstrate that the tuner's entire
// footprint — universe, statistics, registry, snapshot — is bounded by
// the monitored state rather than the workload history.
type SoakOptions struct {
	// Statements is the total stream length (default 10000).
	Statements int
	// PerPhase is the phase length of the rotating workload (default
	// 200, the benchmark's phase size). Every phase rotates the dataset
	// focus and refreshes most query templates, so new candidate indices
	// keep being mined for the whole run.
	PerPhase int
	// Seed drives workload generation and the tuner's partitioner.
	Seed int64
	// RetireAfter is the tuner's retirement horizon (default 400).
	RetireAfter int
	// CompactEvery triggers a registry compaction after this many
	// statements, modeling the service's checkpoint-time GC (default
	// 500, the default checkpoint cadence).
	CompactEvery int
	// SampleEvery is the metric sampling stride (default 250).
	SampleEvery int
	// IdxCnt, StateCnt, HistSize override the tuner knobs (zero: the
	// paper defaults).
	IdxCnt, StateCnt, HistSize int
}

// DefaultSoakOptions returns the long-horizon defaults (10k statements,
// 50 rotating phases).
func DefaultSoakOptions() SoakOptions {
	return SoakOptions{
		Statements:   10000,
		PerPhase:     200,
		Seed:         99,
		RetireAfter:  400,
		CompactEvery: 500,
		SampleEvery:  250,
	}
}

func (o *SoakOptions) applyDefaults() {
	def := DefaultSoakOptions()
	if o.Statements <= 0 {
		o.Statements = def.Statements
	}
	if o.PerPhase <= 0 {
		o.PerPhase = def.PerPhase
	}
	if o.Seed == 0 {
		o.Seed = def.Seed
	}
	if o.RetireAfter == 0 {
		o.RetireAfter = def.RetireAfter
	}
	if o.CompactEvery == 0 {
		o.CompactEvery = def.CompactEvery
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = def.SampleEvery
	}
}

// SoakSample is one point of the soak trajectory.
type SoakSample struct {
	// Statement is the position the sample was taken at.
	Statement int `json:"statement"`
	// Universe is |U|, the retained candidate universe.
	Universe int `json:"universe"`
	// BenefitWindows and PairWindows count retained statistic histories.
	BenefitWindows int `json:"benefit_windows"`
	PairWindows    int `json:"pair_windows"`
	// Registry is the number of live interned index definitions.
	Registry int `json:"registry"`
	// Retired is the cumulative count of retired candidates.
	Retired int `json:"retired"`
	// SnapshotBytes is the encoded size of a full state snapshot taken
	// at this point (registry + tuner state, v2 codec).
	SnapshotBytes int `json:"snapshot_bytes"`
	// HeapBytes is runtime.MemStats.HeapAlloc after a forced GC.
	HeapBytes uint64 `json:"heap_bytes"`
}

// SoakReport is the payload of the soak run, carried in BENCH_wfit.json
// under "soak". The summary fields split the trajectory at the warm-up
// boundary (one retirement horizon plus one compaction period): a
// bounded tuner shows PeakUniverse/PeakRegistry/PeakSnapshotBytes after
// warm-up in the same band as the final values, while MinedTotal keeps
// growing with the workload.
type SoakReport struct {
	Statements   int   `json:"statements"`
	RetireAfter  int   `json:"retire_after"`
	CompactEvery int   `json:"compact_every"`
	IdxCnt       int   `json:"idx_cnt"`
	HistSize     int   `json:"hist_size"`
	Seed         int64 `json:"seed"`

	// MinedTotal counts every definition ever interned (live registry
	// plus definitions dropped by compaction) — the footprint an
	// unbounded tuner would retain.
	MinedTotal     int `json:"mined_total"`
	RetiredTotal   int `json:"retired_total"`
	CompactedTotal int `json:"compacted_total"`

	// Peak* are maxima over post-warm-up samples; Final* are the last
	// sample. WarmupStatements marks the boundary.
	WarmupStatements   int    `json:"warmup_statements"`
	PeakUniverse       int    `json:"peak_universe"`
	FinalUniverse      int    `json:"final_universe"`
	PeakStatsEntries   int    `json:"peak_stats_entries"`
	FinalStatsEntries  int    `json:"final_stats_entries"`
	PeakRegistry       int    `json:"peak_registry"`
	FinalRegistry      int    `json:"final_registry"`
	PeakSnapshotBytes  int    `json:"peak_snapshot_bytes"`
	FinalSnapshotBytes int    `json:"final_snapshot_bytes"`
	PeakHeapBytes      uint64 `json:"peak_heap_bytes"`

	WallMS  float64      `json:"wall_ms"`
	Samples []SoakSample `json:"samples"`
}

// countingWriter measures encoded size without retaining bytes.
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}

// RunSoak drives the soak scenario. It builds a private world (registry,
// cost model, optimizer) because compaction renumbers the registry ID
// space, which must never happen to the shared read-only environment.
func RunSoak(o SoakOptions) (*SoakReport, error) {
	o.applyDefaults()
	cat, joins := datagen.Build()
	phases := (o.Statements + o.PerPhase - 1) / o.PerPhase
	wl := workload.Generate(cat, joins, workload.Options{
		Phases:   phases,
		PerPhase: o.PerPhase,
		Seed:     o.Seed,
	})
	if wl.Len() < o.Statements {
		return nil, fmt.Errorf("bench: soak workload too short: %d < %d", wl.Len(), o.Statements)
	}

	reg := index.NewRegistry()
	model := cost.NewModel(cat, reg, cost.DefaultParams())
	opt := whatif.New(model)
	options := core.DefaultOptions()
	options.Seed = o.Seed
	options.RetireAfter = o.RetireAfter
	if o.IdxCnt > 0 {
		options.IdxCnt = o.IdxCnt
	}
	if o.StateCnt > 0 {
		options.StateCnt = o.StateCnt
	}
	if o.HistSize > 0 {
		options.HistSize = o.HistSize
	}
	tuner := core.NewWFIT(opt, options)

	r := &SoakReport{
		Statements:       o.Statements,
		RetireAfter:      o.RetireAfter,
		CompactEvery:     o.CompactEvery,
		IdxCnt:           options.IdxCnt,
		HistSize:         options.HistSize,
		Seed:             o.Seed,
		WarmupStatements: o.RetireAfter + o.CompactEvery,
	}

	sample := func(pos int) {
		benefit, pairs := tuner.StatsEntries()
		var cw countingWriter
		snap := &state.Snapshot{
			Defs:  state.CaptureRegistry(reg),
			Tuner: tuner.ExportState(),
		}
		if err := state.Write(&cw, snap); err != nil {
			// Counting writer never fails; an encode error is a bug.
			panic(fmt.Sprintf("bench: soak snapshot encode: %v", err))
		}
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s := SoakSample{
			Statement:      pos,
			Universe:       tuner.UniverseSize(),
			BenefitWindows: benefit,
			PairWindows:    pairs,
			Registry:       reg.Len(),
			Retired:        tuner.Retired(),
			SnapshotBytes:  cw.n,
			HeapBytes:      ms.HeapAlloc,
		}
		r.Samples = append(r.Samples, s)
		if pos >= r.WarmupStatements {
			if s.Universe > r.PeakUniverse {
				r.PeakUniverse = s.Universe
			}
			if e := s.BenefitWindows + s.PairWindows; e > r.PeakStatsEntries {
				r.PeakStatsEntries = e
			}
			if s.Registry > r.PeakRegistry {
				r.PeakRegistry = s.Registry
			}
			if s.SnapshotBytes > r.PeakSnapshotBytes {
				r.PeakSnapshotBytes = s.SnapshotBytes
			}
			if s.HeapBytes > r.PeakHeapBytes {
				r.PeakHeapBytes = s.HeapBytes
			}
		}
	}

	start := time.Now()
	for i := 0; i < o.Statements; i++ {
		s := wl.Statements[i]
		tuner.AnalyzeQuery(s)
		// The modeled DBA grants full autonomy: every recommendation is
		// adopted immediately, so the materialized set keeps rotating
		// with the schema focus like a live deployment's would.
		tuner.SetMaterialized(tuner.Recommend())
		pos := i + 1
		if pos%o.CompactEvery == 0 {
			r.CompactedTotal += tuner.CompactRegistry()
		}
		if pos%o.SampleEvery == 0 || pos == o.Statements {
			sample(pos)
		}
	}
	r.WallMS = float64(time.Since(start).Microseconds()) / 1e3

	last := r.Samples[len(r.Samples)-1]
	r.FinalUniverse = last.Universe
	r.FinalStatsEntries = last.BenefitWindows + last.PairWindows
	r.FinalRegistry = last.Registry
	r.FinalSnapshotBytes = last.SnapshotBytes
	r.RetiredTotal = tuner.Retired()
	r.MinedTotal = reg.Len() + r.CompactedTotal
	return r, nil
}
