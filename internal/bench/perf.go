package bench

import (
	"runtime"
	"sort"

	"repro/internal/core"
)

// PerfSide measures one configuration of the per-statement analysis loop:
// the full WFIT in deployment configuration (online candidate maintenance,
// private what-if optimizer), driven over the environment's workload.
type PerfSide struct {
	// Workers is the analysis pipeline's worker bound (1 = serial path).
	Workers int `json:"workers"`
	// WallMSTotal is the total wall time spent inside the tuner.
	WallMSTotal float64 `json:"analysis_wall_ms_total"`
	// USPerStmtMean is the mean per-statement analysis wall time (µs).
	USPerStmtMean float64 `json:"us_per_stmt_mean"`
	// USPerStmtP50/P90/P99/Max summarize the per-statement distribution.
	USPerStmtP50 float64 `json:"us_per_stmt_p50"`
	USPerStmtP90 float64 `json:"us_per_stmt_p90"`
	USPerStmtP99 float64 `json:"us_per_stmt_p99"`
	USPerStmtMax float64 `json:"us_per_stmt_max"`
	// PerStmtWallUS is the full per-statement wall-time trajectory (µs).
	PerStmtWallUS []float64 `json:"per_stmt_wall_us"`
	// AllocsPerStmt*/BytesPerStmt* summarize the per-statement heap
	// allocation distribution (allocation count and allocated bytes
	// attributable to the tuner, measured as runtime MemStats deltas
	// around the analysis of each statement).
	AllocsPerStmtMean float64 `json:"allocs_per_stmt_mean"`
	AllocsPerStmtP50  float64 `json:"allocs_per_stmt_p50"`
	AllocsPerStmtMax  float64 `json:"allocs_per_stmt_max"`
	BytesPerStmtMean  float64 `json:"bytes_per_stmt_mean"`
	BytesPerStmtP50   float64 `json:"bytes_per_stmt_p50"`
	BytesPerStmtP90   float64 `json:"bytes_per_stmt_p90"`
	BytesPerStmtMax   float64 `json:"bytes_per_stmt_max"`
	// WhatIfCalls counts real optimizer invocations; CacheHits counts
	// probes served by the what-if cache; CacheHitRate is
	// hits / (hits + calls).
	WhatIfCalls  int64   `json:"whatif_calls"`
	CacheHits    int64   `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// WhatIfPerStmt summarizes IBG sizes (= what-if calls per statement).
	WhatIfPerStmt Overhead `json:"whatif_per_stmt"`
	// FinalRatio is totWork(OPT)/totWork after the whole workload — the
	// paper's OPT-normalized quality metric. TotalWork is the raw total,
	// and OptNormalizedRatio the full per-statement ratio trajectory.
	FinalRatio         float64   `json:"opt_normalized_final_ratio"`
	TotalWork          float64   `json:"total_work"`
	OptNormalizedRatio []float64 `json:"opt_normalized_ratio"`

	// totWork keeps the raw per-statement trajectory for the exact
	// serial-vs-parallel comparison (not marshaled; the normalized form
	// above carries the same information for readers).
	totWork []float64
}

// PerfReport compares the serial and parallel per-statement analysis
// paths; it is the payload of cmd/wfitbench's BENCH_wfit.json. Schema
// wfit-perf/v3 added the Service section (the wfit-serve loadgen); v4
// added the Soak section (the long-horizon bounded-memory run); v5 added
// the Pipeline section (the group-commit ingest-throughput comparison);
// v6 added the Failover section (the replicated-pair kill test: blip
// latency across promotion and steady-state replication lag); v7 added
// the Obs section (metrics-off vs metrics-on ingest overhead and the
// slowest-statement trace attribution); v8 added the Gauntlet section
// (the engine × scenario matrix of OPT-normalized total work).
type PerfReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	Cores      int    `json:"cores"`
	Statements int    `json:"statements"`
	// Serial forces Workers=1 through the whole pipeline; Parallel uses
	// one worker per core. Speedup is serial mean / parallel mean
	// per-statement time; it approaches 1.0 on a single-core host.
	Serial   *PerfSide `json:"serial"`
	Parallel *PerfSide `json:"parallel"`
	Speedup  float64   `json:"speedup"`
	// RatiosMatch records the determinism guarantee as measured: the two
	// paths produced bit-identical total-work trajectories.
	RatiosMatch bool `json:"serial_parallel_results_identical"`
	// Service is the service-mode loadgen measurement (K concurrent
	// sessions driving wfit-serve over HTTP); nil when it was skipped.
	Service *ServicePerf `json:"service,omitempty"`
	// Soak is the long-horizon bounded-memory run (rotating schemas with
	// candidate retirement and registry compaction); nil when skipped.
	Soak *SoakReport `json:"soak,omitempty"`
	// Pipeline is the ingest-throughput comparison (per-record commits
	// vs WAL group commit + speculative analysis, with and without
	// fsync); nil when skipped.
	Pipeline *PipelinePerf `json:"pipeline,omitempty"`
	// Failover is the replicated-pair kill test (client-observed outage
	// blip across standby promotion, acked-loss accounting, replication
	// lag); nil when skipped.
	Failover *FailoverPerf `json:"failover,omitempty"`
	// Obs is the observability-overhead comparison (the same loadgen with
	// metrics off and on) plus the slowest-statement trace attribution;
	// nil when skipped.
	Obs *ObsPerf `json:"obs,omitempty"`
	// Gauntlet is the engine × scenario matrix (every registered tuner
	// engine over every workload profile, OPT-normalized); nil when
	// skipped.
	Gauntlet *GauntletReport `json:"gauntlet,omitempty"`
}

// RunPerf evaluates the full WFIT once with the given worker bound and
// returns the measured side. It runs alone (no concurrent runs) and
// starts from a collected heap, so back-to-back measurements don't bias
// the later one with the earlier one's garbage.
func (e *Env) RunPerf(workers int) *PerfSide {
	runtime.GC()
	options := core.DefaultOptions()
	options.IdxCnt = e.Options.IdxCnt
	options.StateCnt = e.middle()
	options.Workers = workers
	algo := e.NewWFITAutoAlgo("PERF", options)
	run := e.Run(RunSpec{Algo: algo, TrackAllocs: true})

	n := len(run.StmtAnalyze)
	side := &PerfSide{
		Workers:            workers,
		WallMSTotal:        float64(run.AnalyzeTime.Microseconds()) / 1e3,
		PerStmtWallUS:      make([]float64, n),
		WhatIfCalls:        algo.WhatIfCalls(),
		CacheHits:          algo.Optimizer().Hits(),
		WhatIfPerStmt:      NewOverhead(algo.IBGNodeCounts()),
		FinalRatio:         run.Ratio[len(run.Ratio)-1],
		TotalWork:          run.TotWork[len(run.TotWork)-1],
		OptNormalizedRatio: run.Ratio,
		totWork:            run.TotWork,
	}
	if probes := side.WhatIfCalls + side.CacheHits; probes > 0 {
		side.CacheHitRate = float64(side.CacheHits) / float64(probes)
	}
	sorted := make([]float64, n)
	for i, d := range run.StmtAnalyze {
		us := float64(d.Nanoseconds()) / 1e3
		side.PerStmtWallUS[i] = us
		sorted[i] = us
	}
	sort.Float64s(sorted)
	if n > 0 {
		total := 0.0
		for _, us := range sorted {
			total += us
		}
		side.USPerStmtMean = total / float64(n)
		side.USPerStmtP50 = sorted[n/2]
		side.USPerStmtP90 = sorted[n*9/10]
		side.USPerStmtP99 = sorted[n*99/100]
		side.USPerStmtMax = sorted[n-1]
	}
	side.AllocsPerStmtMean, side.AllocsPerStmtP50, _, side.AllocsPerStmtMax =
		distribution(run.StmtAllocs, sorted)
	side.BytesPerStmtMean, side.BytesPerStmtP50, side.BytesPerStmtP90, side.BytesPerStmtMax =
		distribution(run.StmtAllocBytes, sorted)
	return side
}

// distribution summarizes a per-statement counter series, reusing the
// caller's float scratch for the sort.
func distribution(series []uint64, scratch []float64) (mean, p50, p90, max float64) {
	n := len(series)
	if n == 0 || len(scratch) < n {
		return 0, 0, 0, 0
	}
	scratch = scratch[:n]
	total := 0.0
	for i, v := range series {
		scratch[i] = float64(v)
		total += float64(v)
	}
	sort.Float64s(scratch)
	return total / float64(n), scratch[n/2], scratch[n*9/10], scratch[n-1]
}

// RunPerfComparison measures the serial and parallel analysis paths back
// to back (never concurrently — timings stay uncontended) and verifies
// they produced identical tuning trajectories.
func (e *Env) RunPerfComparison() *PerfReport {
	serial := e.RunPerf(1)
	parallel := e.RunPerf(0)
	r := &PerfReport{
		Schema:      "wfit-perf/v8",
		GoVersion:   runtime.Version(),
		Cores:       runtime.NumCPU(),
		Statements:  len(e.Workload.Statements),
		Serial:      serial,
		Parallel:    parallel,
		RatiosMatch: trajectoriesEqual(serial.totWork, parallel.totWork),
	}
	if parallel.USPerStmtMean > 0 {
		r.Speedup = serial.USPerStmtMean / parallel.USPerStmtMean
	}
	return r
}

// trajectoriesEqual reports bit-exact equality of two total-work
// trajectories, element by element.
func trajectoriesEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
