package bench

import (
	"repro/internal/bc"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/interaction"
	"repro/internal/stmt"
	"repro/internal/whatif"
)

// wfaPlusAlgo adapts the fixed-candidate WFIT (= WFA+ with feedback) to
// the harness.
type wfaPlusAlgo struct {
	name string
	p    *core.WFAPlus
}

// NewWFITFixedAlgo builds the simplified WFIT over a preset stable
// partition — the configuration used by Figures 8–11.
func (e *Env) NewWFITFixedAlgo(name string, partition interaction.Partition) Algorithm {
	return &wfaPlusAlgo{
		name: name,
		p:    core.NewWFAPlus(e.Reg, partition, index.EmptySet),
	}
}

// NewWFITIndAlgo builds WFIT-IND: every candidate in its own part, i.e.
// all interactions assumed away.
func (e *Env) NewWFITIndAlgo(name string) Algorithm {
	return e.NewWFITFixedAlgo(name, interaction.Singletons(e.FixedC))
}

func (a *wfaPlusAlgo) Name() string { return a.name }
func (a *wfaPlusAlgo) Analyze(_ int, _ *stmt.Statement, sc core.StatementCost) {
	a.p.AnalyzeStatement(sc)
}
func (a *wfaPlusAlgo) Recommend() index.Set           { return a.p.Recommend() }
func (a *wfaPlusAlgo) Feedback(plus, minus index.Set) { a.p.Feedback(plus, minus) }
func (a *wfaPlusAlgo) SetMaterialized(index.Set)      {}

// bcAlgo adapts the Bruno–Chaudhuri baseline. BC has no feedback channel.
type bcAlgo struct {
	name string
	b    *bc.BC
}

// NewBCAlgo builds the BC baseline over the fixed candidate set.
func (e *Env) NewBCAlgo(name string) Algorithm {
	return &bcAlgo{name: name, b: bc.New(e.Reg, e.FixedC, index.EmptySet)}
}

func (a *bcAlgo) Name() string { return a.name }
func (a *bcAlgo) Analyze(_ int, _ *stmt.Statement, sc core.StatementCost) {
	a.b.AnalyzeStatement(sc)
}
func (a *bcAlgo) Recommend() index.Set           { return a.b.Recommend() }
func (a *bcAlgo) Feedback(plus, minus index.Set) {}
func (a *bcAlgo) SetMaterialized(index.Set)      {}

// wfitAutoAlgo adapts the full WFIT with online candidate maintenance
// (Figure 12's AUTO). It builds its own IBGs over its evolving universe
// through a private what-if optimizer, whose call counter provides the
// overhead statistics.
type wfitAutoAlgo struct {
	name string
	t    *core.WFIT
	opt  *whatif.Optimizer

	// per-statement IBG node counts (= what-if calls per statement)
	ibgNodes []int
}

// NewWFITAutoAlgo builds the full WFIT.
func (e *Env) NewWFITAutoAlgo(name string, options core.Options) *WFITAutoAlgo {
	o := whatif.New(e.Model)
	return &WFITAutoAlgo{wfitAutoAlgo{
		name: name,
		t:    core.NewWFIT(o, options),
		opt:  o,
	}}
}

// WFITAutoAlgo exposes the AUTO adapter with its overhead accessors.
type WFITAutoAlgo struct {
	wfitAutoAlgo
}

func (a *WFITAutoAlgo) Name() string { return a.name }
func (a *WFITAutoAlgo) Analyze(_ int, s *stmt.Statement, _ core.StatementCost) {
	a.t.AnalyzeQuery(s)
	a.ibgNodes = append(a.ibgNodes, a.t.LastIBGNodes())
}
func (a *WFITAutoAlgo) Recommend() index.Set           { return a.t.Recommend() }
func (a *WFITAutoAlgo) Feedback(plus, minus index.Set) { a.t.Feedback(plus, minus) }
func (a *WFITAutoAlgo) SetMaterialized(m index.Set)    { a.t.SetMaterialized(m) }

// Tuner exposes the underlying WFIT (repartition counts, universe size).
func (a *WFITAutoAlgo) Tuner() *core.WFIT { return a.t }

// WhatIfCalls reports the real optimizer invocations performed so far.
func (a *WFITAutoAlgo) WhatIfCalls() int64 { return a.opt.Calls() }

// Optimizer exposes the private what-if optimizer (cache statistics).
func (a *WFITAutoAlgo) Optimizer() *whatif.Optimizer { return a.opt }

// IBGNodeCounts returns per-statement IBG sizes (what-if calls/query).
func (a *WFITAutoAlgo) IBGNodeCounts() []int { return a.ibgNodes }
