package bench

import (
	"repro/internal/bc"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/interaction"
	"repro/internal/stmt"
	"repro/internal/tuner"
	"repro/internal/whatif"
)

// wfaPlusAlgo adapts the fixed-candidate WFIT (= WFA+ with feedback) to
// the harness.
type wfaPlusAlgo struct {
	name string
	p    *core.WFAPlus
}

// NewWFITFixedAlgo builds the simplified WFIT over a preset stable
// partition — the configuration used by Figures 8–11.
func (e *Env) NewWFITFixedAlgo(name string, partition interaction.Partition) Algorithm {
	return &wfaPlusAlgo{
		name: name,
		p:    core.NewWFAPlus(e.Reg, partition, index.EmptySet),
	}
}

// NewWFITIndAlgo builds WFIT-IND: every candidate in its own part, i.e.
// all interactions assumed away.
func (e *Env) NewWFITIndAlgo(name string) Algorithm {
	return e.NewWFITFixedAlgo(name, interaction.Singletons(e.FixedC))
}

func (a *wfaPlusAlgo) Name() string { return a.name }
func (a *wfaPlusAlgo) Analyze(_ int, _ *stmt.Statement, sc core.StatementCost) {
	a.p.AnalyzeStatement(sc)
}
func (a *wfaPlusAlgo) Recommend() index.Set           { return a.p.Recommend() }
func (a *wfaPlusAlgo) Feedback(plus, minus index.Set) { a.p.Feedback(plus, minus) }
func (a *wfaPlusAlgo) SetMaterialized(index.Set)      {}

// bcAlgo adapts the Bruno–Chaudhuri baseline. BC has no feedback channel.
type bcAlgo struct {
	name string
	b    *bc.BC
}

// NewBCAlgo builds the BC baseline over the fixed candidate set.
func (e *Env) NewBCAlgo(name string) Algorithm {
	return &bcAlgo{name: name, b: bc.New(e.Reg, e.FixedC, index.EmptySet)}
}

func (a *bcAlgo) Name() string { return a.name }
func (a *bcAlgo) Analyze(_ int, _ *stmt.Statement, sc core.StatementCost) {
	a.b.AnalyzeStatement(sc)
}
func (a *bcAlgo) Recommend() index.Set           { return a.b.Recommend() }
func (a *bcAlgo) Feedback(plus, minus index.Set) {}
func (a *bcAlgo) SetMaterialized(index.Set)      {}

// EngineAlgo drives any registered tuner engine — an engine with online
// candidate maintenance, building its own IBGs over its evolving
// universe through a private what-if optimizer whose call counter
// provides the overhead statistics. It replaces the WFIT-only AUTO
// adapter: the harness sees only the tuner.Engine contract, so every
// engine the server can run is benchmarkable unchanged.
type EngineAlgo struct {
	name string
	eng  tuner.Engine
	opt  *whatif.Optimizer

	// per-statement IBG node counts (= what-if calls per statement)
	ibgNodes []int
}

// NewEngineAlgo builds the adapter for the named engine kind over a
// private what-if optimizer.
func (e *Env) NewEngineAlgo(name, kind string, options core.Options) (*EngineAlgo, error) {
	o := whatif.New(e.Model)
	eng, err := tuner.New(kind, o, options)
	if err != nil {
		return nil, err
	}
	return &EngineAlgo{name: name, eng: eng, opt: o}, nil
}

// NewWFITAutoAlgo builds the full WFIT with online candidate and
// partition maintenance (Figure 12's AUTO).
func (e *Env) NewWFITAutoAlgo(name string, options core.Options) *EngineAlgo {
	a, err := e.NewEngineAlgo(name, tuner.KindWFIT, options)
	if err != nil {
		panic("bench: wfit engine not registered: " + err.Error())
	}
	return a
}

func (a *EngineAlgo) Name() string { return a.name }
func (a *EngineAlgo) Analyze(_ int, s *stmt.Statement, _ core.StatementCost) {
	a.eng.AnalyzeQuery(s)
	a.ibgNodes = append(a.ibgNodes, a.eng.LastIBGNodes())
}
func (a *EngineAlgo) Recommend() index.Set           { return a.eng.Recommend() }
func (a *EngineAlgo) Feedback(plus, minus index.Set) { a.eng.Feedback(plus, minus) }
func (a *EngineAlgo) SetMaterialized(m index.Set)    { a.eng.SetMaterialized(m) }

// Engine exposes the underlying engine (status gauges: universe size,
// repartition counts).
func (a *EngineAlgo) Engine() tuner.Engine { return a.eng }

// WhatIfCalls reports the real optimizer invocations performed so far.
func (a *EngineAlgo) WhatIfCalls() int64 { return a.opt.Calls() }

// Optimizer exposes the private what-if optimizer (cache statistics).
func (a *EngineAlgo) Optimizer() *whatif.Optimizer { return a.opt }

// IBGNodeCounts returns per-statement IBG sizes (what-if calls/query).
func (a *EngineAlgo) IBGNodeCounts() []int { return a.ibgNodes }
