package bench

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/core"
	"repro/internal/tuner"
	"repro/internal/workload"

	// The gauntlet races every registered engine; linking the bandit here
	// keeps wfitbench's engine set identical to the serving daemon's.
	_ "repro/internal/tuner/bandit"
)

// gauntletDefaultScenario names the benchmark-default workload (the
// paper's 8-phase rotation, Options.Profile == "") in the gauntlet
// matrix, where the empty string would read as a missing cell.
const gauntletDefaultScenario = "phased"

// GauntletScenarios lists the scenario matrix's workload axis: the
// benchmark default plus every named workload profile.
func GauntletScenarios() []string {
	out := make([]string, 0, len(workload.Profiles()))
	for _, p := range workload.Profiles() {
		if p == "" {
			p = gauntletDefaultScenario
		}
		out = append(out, p)
	}
	return out
}

// GauntletCell is one (engine × scenario) evaluation.
type GauntletCell struct {
	Engine   string `json:"engine"`
	Scenario string `json:"scenario"`
	// TotalWork is the engine's cumulative total work over the scenario;
	// OptTotalWork is the offline optimum's, and FinalRatio their
	// OPT-normalized quotient (1.0 = optimal).
	TotalWork    float64 `json:"total_work"`
	OptTotalWork float64 `json:"opt_total_work"`
	FinalRatio   float64 `json:"opt_normalized_final_ratio"`
	// Changes counts materialized-set changes over the run.
	Changes int `json:"changes"`
	// TrajectoryDigest fingerprints the full total-work trajectory
	// (FNV-1a over the raw float64 bits): equal digests mean bit-identical
	// tuning behavior, which is what CI's gauntlet smoke compares against
	// the committed baseline.
	TrajectoryDigest string `json:"trajectory_digest"`
}

// GauntletReport is the engine × scenario matrix, the "gauntlet" section
// of BENCH_wfit.json.
type GauntletReport struct {
	Engines   []string       `json:"engines"`
	Scenarios []string       `json:"scenarios"`
	Cells     []GauntletCell `json:"cells"`
}

// Cell returns the (engine, scenario) cell, nil when absent.
func (g *GauntletReport) Cell(engine, scenario string) *GauntletCell {
	for i := range g.Cells {
		if g.Cells[i].Engine == engine && g.Cells[i].Scenario == scenario {
			return &g.Cells[i]
		}
	}
	return nil
}

// RunGauntlet evaluates every registered tuner engine over every
// scenario, reporting OPT-normalized total work per cell. base sizes the
// per-scenario environments (workload shape, candidate budget); each
// scenario rebuilds the environment with its profile so the OPT baseline
// is computed per scenario.
func RunGauntlet(base Options) *GauntletReport {
	rep := &GauntletReport{Engines: tuner.Kinds(), Scenarios: GauntletScenarios()}
	for _, scenario := range rep.Scenarios {
		o := base
		if scenario == gauntletDefaultScenario {
			o.Workload.Profile = ""
		} else {
			o.Workload.Profile = scenario
		}
		env := NewEnv(o)
		n := env.Workload.Len()
		for _, kind := range rep.Engines {
			options := core.DefaultOptions()
			options.IdxCnt = env.Options.IdxCnt
			options.StateCnt = env.middle()
			options.Workers = env.Options.Workers
			algo, err := env.NewEngineAlgo(kind, kind, options)
			if err != nil {
				panic("bench: gauntlet engine vanished mid-run: " + err.Error())
			}
			run := env.Run(RunSpec{Algo: algo})
			rep.Cells = append(rep.Cells, GauntletCell{
				Engine:           kind,
				Scenario:         scenario,
				TotalWork:        run.TotWork[n],
				OptTotalWork:     env.Opt.PrefixTotal[n],
				FinalRatio:       run.Ratio[n],
				Changes:          run.Changes,
				TrajectoryDigest: trajectoryDigest(run.TotWork),
			})
		}
	}
	return rep
}

// trajectoryDigest fingerprints a total-work trajectory bit-exactly:
// FNV-1a over each element's IEEE-754 representation.
func trajectoryDigest(totWork []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range totWork {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:]) //nolint:errcheck // fnv never fails
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
