package bench

import "testing"

// TestRunPipelineSmall exercises the ingest-throughput bench end to end
// at a tiny scale: all four modes run, every mode ingests the full slice,
// and — the differential guarantee — the four trajectories' total work is
// bit-identical, batching and speculation included.
func TestRunPipelineSmall(t *testing.T) {
	p, err := RunPipeline(PipelineOptions{
		DataDir:     t.TempDir(),
		Warmup:      24,
		Statements:  48,
		ClientBatch: 8,
		Batch:       8,
		Pipeline:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Modes) != 4 {
		t.Fatalf("ran %d modes, want 4", len(p.Modes))
	}
	if !p.TotalWorkIdentical {
		for _, m := range p.Modes {
			t.Logf("%s: total work %v", m.Name, m.TotalWork)
		}
		t.Fatalf("total work diverged across ingest modes")
	}
	for _, m := range p.Modes {
		if m.StmtsPerSec <= 0 || m.WallMS <= 0 {
			t.Fatalf("mode %s measured nothing: %+v", m.Name, m)
		}
	}
	batched := p.Modes[2]
	if batched.GroupCommits == 0 || batched.GroupCommitRecords <= batched.GroupCommits {
		t.Fatalf("batched mode did not group-commit: %d commits / %d records",
			batched.GroupCommits, batched.GroupCommitRecords)
	}
	if batched.SpecHits+batched.SpecMisses == 0 {
		t.Fatalf("batched mode never speculated")
	}
}
