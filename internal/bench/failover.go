package bench

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/datagen"
	"repro/internal/replica"
	"repro/internal/router"
	"repro/internal/server"
	"repro/internal/state"
	"repro/internal/workload"
)

// FailoverOptions configures the failover bench: one synchronously
// replicated shard (primary + warm standby) behind the session router,
// a client streaming statements through the router, and a primary kill
// partway through the stream.
type FailoverOptions struct {
	// DataDir roots the two nodes' persisted state (required).
	DataDir string
	// Statements is the stream length (default 160).
	Statements int
	// FailAt is the statement index at which the primary is killed
	// (default Statements/2).
	FailAt int
	// IdxCnt and StateCnt are the session's tuner knobs (defaults 16/200).
	IdxCnt, StateCnt int
	// CheckpointEvery controls automatic snapshots (default 40 — at least
	// one checkpoint lands before the kill, so the bench also exercises
	// retry-buffer trimming and recovery-from-snapshot paths).
	CheckpointEvery int
	// Seed drives workload generation (default 42).
	Seed int64
	// HealthInterval is the router's probe cadence (default 25ms — bench
	// scale; production uses the 500ms default).
	HealthInterval time.Duration
	// FailThreshold is the router's consecutive-failure bound (default 2).
	FailThreshold int
}

func (o *FailoverOptions) applyDefaults() {
	if o.Statements <= 0 {
		o.Statements = 160
	}
	if o.FailAt <= 0 || o.FailAt >= o.Statements {
		o.FailAt = o.Statements / 2
	}
	if o.IdxCnt <= 0 {
		o.IdxCnt = 16
	}
	if o.StateCnt <= 0 {
		o.StateCnt = 200
	}
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 40
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.HealthInterval <= 0 {
		o.HealthInterval = 25 * time.Millisecond
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 2
	}
}

// FailoverPerf is the failover section of the BENCH trajectory: the
// client-observed cost of losing a primary. Steady* is the ingest latency
// distribution while the primary lives (synchronous replication on the
// write path), Post* after the standby took over; the blip is the
// client-visible write outage spanning detection + promotion; LostAcked
// is the number of acknowledged statements missing after promotion and
// must be zero — that is the replication design's whole claim.
type FailoverPerf struct {
	Statements int `json:"statements"`
	FailAt     int `json:"fail_at"`
	// Steady-state ingest latency through the router, primary alive,
	// sync-replicated (µs per statement).
	SteadyUSMean float64 `json:"steady_us_mean"`
	SteadyUSP50  float64 `json:"steady_us_p50"`
	SteadyUSP90  float64 `json:"steady_us_p90"`
	SteadyUSP99  float64 `json:"steady_us_p99"`
	// Post-failover ingest latency against the promoted standby
	// (unreplicated until a new standby is attached).
	PostUSMean float64 `json:"post_us_mean"`
	PostUSP50  float64 `json:"post_us_p50"`
	PostUSP90  float64 `json:"post_us_p90"`
	PostUSP99  float64 `json:"post_us_p99"`
	// BlipMS is the write outage the client rode out with retries: from
	// the first refused write after the kill to the first acknowledged
	// write on the promoted standby. BlipRetries counts the refused
	// attempts in between.
	BlipMS      float64 `json:"failover_blip_ms"`
	BlipRetries int     `json:"failover_blip_retries"`
	// AckedBeforeKill is what the client had confirmed when the primary
	// died; OnStandbyAtPromotion what the promoted standby held;
	// LostAcked their difference (must be 0 under sync replication).
	AckedBeforeKill      int `json:"acked_before_kill"`
	OnStandbyAtPromotion int `json:"on_standby_at_promotion"`
	LostAcked            int `json:"lost_acked"`
	// Replication-lag samples (primary's local seq minus standby-acked
	// seq, sampled after every acknowledged ingest while the primary
	// lived; sync mode should pin this at 0).
	LagSamples int     `json:"lag_samples"`
	LagMean    float64 `json:"lag_mean"`
	LagMax     uint64  `json:"lag_max"`
	// Ship-path counters at kill time.
	ShipErrors    int64   `json:"ship_errors"`
	SnapshotShips int64   `json:"snapshot_ships"`
	WallMS        float64 `json:"wall_ms"`
}

// RunFailover stands up the replicated pair and the router in-process,
// streams the workload through the router one statement per request,
// kills the primary at FailAt (sessions die without checkpointing, the
// listener drops), rides out the failover window with client-side
// retries, and finishes the stream against the promoted standby.
func RunFailover(o FailoverOptions) (*FailoverPerf, error) {
	o.applyDefaults()
	if o.DataDir == "" {
		return nil, fmt.Errorf("bench: FailoverOptions.DataDir is required")
	}
	for _, sub := range []string{"primary", "standby"} {
		if err := os.MkdirAll(filepath.Join(o.DataDir, sub), 0o755); err != nil {
			return nil, err
		}
	}

	cat, joins := datagen.Build()
	wopts := workload.DefaultOptions()
	wopts.Seed = o.Seed
	wopts.Phases = (o.Statements+wopts.PerPhase-1)/wopts.PerPhase + 1
	wl := workload.Generate(cat, joins, wopts)
	if wl.Len() < o.Statements {
		return nil, fmt.Errorf("bench: workload too short (%d < %d)", wl.Len(), o.Statements)
	}

	// Standby node: follower server with the replication API mounted.
	standbySv, err := server.NewWithCatalog(server.Config{
		DataDir:  filepath.Join(o.DataDir, "standby"),
		Follower: true,
	}, cat)
	if err != nil {
		return nil, err
	}
	standbyTS := httptest.NewServer(replicatedMux(standbySv))
	defer func() { standbyTS.Close(); standbySv.Close() }() //nolint:errcheck

	// Primary node: every session ships synchronously to the standby.
	primarySv, err := server.NewWithCatalog(server.Config{
		DataDir: filepath.Join(o.DataDir, "primary"),
		NewShipper: func(name, dir string, base uint64, tail []state.Record) server.Shipper {
			return replica.NewShipper(replica.Config{
				Session: name, Dir: dir, Standby: standbyTS.URL, Sync: true,
				Base: base, Backlog: tail,
			})
		},
	}, cat)
	if err != nil {
		return nil, err
	}
	primaryTS := httptest.NewServer(replicatedMux(primarySv))
	primaryDead := false
	defer func() {
		if !primaryDead {
			primaryTS.Close()
		}
	}()

	rt, err := router.New(router.Config{
		Shards:         []router.Shard{{Primary: primaryTS.URL, Standby: standbyTS.URL}},
		HealthInterval: o.HealthInterval,
		HealthTimeout:  time.Second,
		FailThreshold:  o.FailThreshold,
		Logf:           func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	routerTS := httptest.NewServer(rt.Handler())
	defer func() { routerTS.Close(); rt.Close() }()

	perf := &FailoverPerf{Statements: o.Statements, FailAt: o.FailAt}
	start := time.Now()
	if err := postJSON(routerTS.URL+"/sessions", map[string]any{
		"name": "fo", "idx_cnt": o.IdxCnt, "state_cnt": o.StateCnt,
		"checkpoint_every": o.CheckpointEvery, "seed": o.Seed,
	}, nil); err != nil {
		return nil, fmt.Errorf("bench: creating failover session: %w", err)
	}
	sess, ok := primarySv.Session("fo")
	if !ok {
		return nil, fmt.Errorf("bench: failover session missing on the primary")
	}
	ingestURL := routerTS.URL + "/sessions/fo/sql"

	// Phase 1: steady state. One statement per request, lag sampled after
	// every ack.
	steady := make([]float64, 0, o.FailAt)
	var lagTotal float64
	for i := 0; i < o.FailAt; i++ {
		t0 := time.Now()
		if err := postJSON(ingestURL, map[string]any{"sql": []string{wl.Statements[i].SQL}}, nil); err != nil {
			return nil, fmt.Errorf("bench: steady-state ingest %d: %w", i, err)
		}
		steady = append(steady, float64(time.Since(t0).Microseconds()))
		if repl := sess.Status().Replication; repl != nil {
			perf.LagSamples++
			lagTotal += float64(repl.Lag)
			if repl.Lag > perf.LagMax {
				perf.LagMax = repl.Lag
			}
		}
	}
	if perf.LagSamples > 0 {
		perf.LagMean = lagTotal / float64(perf.LagSamples)
	}
	perf.AckedBeforeKill = o.FailAt

	// Capture ship-path counters, then kill -9 the primary: sessions die
	// without flushing or checkpointing, the listener drops.
	if repl := sess.Status().Replication; repl != nil {
		perf.ShipErrors = repl.ShipErrors
		perf.SnapshotShips = repl.SnapshotShips
	}
	for _, s := range primarySv.Sessions() {
		s.Kill()
	}
	primaryTS.Close()
	primaryDead = true

	// Failover window: retry the next statement until the router routes
	// it to the promoted standby. Every refusal is counted; the blip is
	// the whole client-visible outage.
	blipStart := time.Now()
	blipDeadline := blipStart.Add(60 * time.Second)
	for {
		err := postJSON(ingestURL, map[string]any{"sql": []string{wl.Statements[o.FailAt].SQL}}, nil)
		if err == nil {
			break
		}
		perf.BlipRetries++
		if time.Now().After(blipDeadline) {
			return nil, fmt.Errorf("bench: failover never completed: %w", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	perf.BlipMS = float64(time.Since(blipStart).Microseconds()) / 1e3

	// The promoted standby must hold every acknowledged statement (the
	// write that just succeeded rode on top of them).
	var status struct {
		Statements int `json:"statements"`
	}
	if err := getJSON(routerTS.URL+"/sessions/fo/status", &status); err != nil {
		return nil, err
	}
	perf.OnStandbyAtPromotion = status.Statements - 1
	perf.LostAcked = perf.AckedBeforeKill - perf.OnStandbyAtPromotion

	// Phase 2: finish the stream against the promoted standby.
	post := make([]float64, 0, o.Statements-o.FailAt-1)
	for i := o.FailAt + 1; i < o.Statements; i++ {
		t0 := time.Now()
		if err := postJSON(ingestURL, map[string]any{"sql": []string{wl.Statements[i].SQL}}, nil); err != nil {
			return nil, fmt.Errorf("bench: post-failover ingest %d: %w", i, err)
		}
		post = append(post, float64(time.Since(t0).Microseconds()))
	}
	perf.WallMS = float64(time.Since(start).Microseconds()) / 1e3

	if err := getJSON(routerTS.URL+"/sessions/fo/status", &status); err != nil {
		return nil, err
	}
	if status.Statements != o.Statements {
		return nil, fmt.Errorf("bench: promoted standby finished with %d statements, want %d",
			status.Statements, o.Statements)
	}

	perf.SteadyUSMean, perf.SteadyUSP50, perf.SteadyUSP90, perf.SteadyUSP99 = latencySummary(steady)
	perf.PostUSMean, perf.PostUSP50, perf.PostUSP90, perf.PostUSP99 = latencySummary(post)
	return perf, nil
}

// replicatedMux is the combined frontend a real wfit-serve runs: the
// replication API mounted next to the service API.
func replicatedMux(sv *server.Server) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/replication/", replica.NewHandler(sv))
	mux.Handle("/", sv.Handler())
	return mux
}

// latencySummary sorts a latency series (µs) and returns mean/p50/p90/p99.
func latencySummary(series []float64) (mean, p50, p90, p99 float64) {
	n := len(series)
	if n == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]float64(nil), series...)
	sort.Float64s(sorted)
	total := 0.0
	for _, v := range sorted {
		total += v
	}
	return total / float64(n), sorted[n/2], sorted[n*9/10], sorted[n*99/100]
}
