package sqlmini

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/catalog"
	"repro/internal/stmt"
)

// stringRangeSelectivity is assumed for range predicates over string
// literals (e.g. date strings), whose position in the column domain the
// catalog cannot place.
const stringRangeSelectivity = 0.05

// Parser converts SQL text into statements, resolving tables and columns
// against a catalog and estimating selectivities from its statistics.
type Parser struct {
	cat *catalog.Catalog
}

// NewParser builds a parser over the catalog.
func NewParser(cat *catalog.Catalog) *Parser {
	return &Parser{cat: cat}
}

// Parse parses one statement (SELECT or UPDATE).
func (p *Parser) Parse(sql string) (*stmt.Statement, error) {
	toks, err := lexAll(sql)
	if err != nil {
		return nil, err
	}
	ps := &parseState{p: p, toks: toks, sql: sql}
	var s *stmt.Statement
	switch {
	case ps.peekKeyword("SELECT"):
		s, err = ps.parseSelect()
	case ps.peekKeyword("UPDATE"):
		s, err = ps.parseUpdate()
	default:
		return nil, &Error{Pos: ps.peek().pos, Msg: "expected SELECT or UPDATE"}
	}
	if err != nil {
		return nil, err
	}
	if !ps.atEOF() {
		return nil, &Error{Pos: ps.peek().pos, Msg: "trailing input after statement"}
	}
	s.SQL = sql
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sqlmini: %w", err)
	}
	return s, nil
}

// parseState carries the token cursor and name resolution context.
type parseState struct {
	p    *Parser
	toks []token
	i    int
	sql  string

	// alias -> qualified table name, in FROM order
	aliases map[string]string
	tables  []string
}

func (ps *parseState) peek() token { return ps.toks[ps.i] }

func (ps *parseState) atEOF() bool { return ps.peek().kind == tokEOF }

func (ps *parseState) advance() token {
	t := ps.toks[ps.i]
	if t.kind != tokEOF {
		ps.i++
	}
	return t
}

// peekKeyword reports whether the next token is the given keyword
// (case-insensitive).
func (ps *parseState) peekKeyword(kw string) bool {
	t := ps.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

// expectKeyword consumes a keyword or fails.
func (ps *parseState) expectKeyword(kw string) error {
	if !ps.peekKeyword(kw) {
		return &Error{Pos: ps.peek().pos, Msg: "expected " + kw}
	}
	ps.advance()
	return nil
}

// expectSymbol consumes a punctuation token or fails.
func (ps *parseState) expectSymbol(sym string) error {
	t := ps.peek()
	if t.kind != tokSymbol || t.text != sym {
		return &Error{Pos: t.pos, Msg: "expected " + sym}
	}
	ps.advance()
	return nil
}

func (ps *parseState) isSymbol(sym string) bool {
	t := ps.peek()
	return t.kind == tokSymbol && t.text == sym
}

// colRef is an unresolved column reference.
type colRef struct {
	qualifier string // alias or table part, may be empty
	column    string
	pos       int
}

// parseColRef parses [qualifier.]column.
func (ps *parseState) parseColRef() (colRef, error) {
	t := ps.peek()
	if t.kind != tokIdent {
		return colRef{}, &Error{Pos: t.pos, Msg: "expected column reference"}
	}
	first := ps.advance()
	if ps.isSymbol(".") {
		ps.advance()
		second := ps.peek()
		if second.kind != tokIdent {
			return colRef{}, &Error{Pos: second.pos, Msg: "expected column name after '.'"}
		}
		ps.advance()
		return colRef{qualifier: first.text, column: second.text, pos: first.pos}, nil
	}
	return colRef{column: first.text, pos: first.pos}, nil
}

// resolve maps a column reference to (qualified table, column stats).
func (ps *parseState) resolve(ref colRef) (string, catalog.Column, error) {
	if ref.qualifier != "" {
		qn, ok := ps.aliases[strings.ToLower(ref.qualifier)]
		if !ok {
			return "", catalog.Column{}, &Error{Pos: ref.pos,
				Msg: "unknown table or alias " + ref.qualifier}
		}
		t := ps.p.cat.MustTable(qn)
		col, ok := t.Column(ref.column)
		if !ok {
			return "", catalog.Column{}, &Error{Pos: ref.pos,
				Msg: fmt.Sprintf("column %s not in table %s", ref.column, qn)}
		}
		return qn, col, nil
	}
	// Unqualified: must be unique across the FROM tables.
	var foundTable string
	var foundCol catalog.Column
	for _, qn := range ps.tables {
		t := ps.p.cat.MustTable(qn)
		if col, ok := t.Column(ref.column); ok {
			if foundTable != "" {
				return "", catalog.Column{}, &Error{Pos: ref.pos,
					Msg: "ambiguous column " + ref.column}
			}
			foundTable, foundCol = qn, col
		}
	}
	if foundTable == "" {
		return "", catalog.Column{}, &Error{Pos: ref.pos,
			Msg: "unknown column " + ref.column}
	}
	return foundTable, foundCol, nil
}

// parseTableName parses schema.table or a bare table name (resolved by
// uniqueness across schemas).
func (ps *parseState) parseTableName() (string, error) {
	t := ps.peek()
	if t.kind != tokIdent {
		return "", &Error{Pos: t.pos, Msg: "expected table name"}
	}
	first := ps.advance()
	if ps.isSymbol(".") {
		ps.advance()
		second := ps.peek()
		if second.kind != tokIdent {
			return "", &Error{Pos: second.pos, Msg: "expected table name after '.'"}
		}
		ps.advance()
		qn := strings.ToLower(first.text + "." + second.text)
		if _, ok := ps.p.cat.Table(qn); !ok {
			return "", &Error{Pos: first.pos, Msg: "unknown table " + qn}
		}
		return qn, nil
	}
	// Bare name: search all schemas.
	name := strings.ToLower(first.text)
	var found string
	for _, tbl := range ps.p.cat.Tables() {
		if tbl.Name == name {
			if found != "" {
				return "", &Error{Pos: first.pos, Msg: "ambiguous table " + name}
			}
			found = tbl.QualifiedName()
		}
	}
	if found == "" {
		return "", &Error{Pos: first.pos, Msg: "unknown table " + name}
	}
	return found, nil
}

// parseFrom parses the FROM clause table list with optional aliases.
func (ps *parseState) parseFrom() error {
	ps.aliases = make(map[string]string)
	for {
		qn, err := ps.parseTableName()
		if err != nil {
			return err
		}
		ps.tables = append(ps.tables, qn)
		// Register the bare table name and schema.table as implicit
		// aliases.
		ps.aliases[qn] = qn
		if dot := strings.IndexByte(qn, '.'); dot >= 0 {
			ps.aliases[qn[dot+1:]] = qn
		}
		// Optional explicit alias.
		if t := ps.peek(); t.kind == tokIdent && !isReserved(t.text) {
			ps.advance()
			ps.aliases[strings.ToLower(t.text)] = qn
		}
		if ps.isSymbol(",") {
			ps.advance()
			continue
		}
		return nil
	}
}

// isReserved lists keywords that terminate alias positions.
func isReserved(word string) bool {
	switch strings.ToUpper(word) {
	case "WHERE", "AND", "SET", "FROM", "SELECT", "UPDATE", "BETWEEN", "ORDER", "GROUP":
		return true
	}
	return false
}

// parseSelect parses a SELECT statement.
func (ps *parseState) parseSelect() (*stmt.Statement, error) {
	if err := ps.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &stmt.Statement{Kind: stmt.Query}

	// Select list: count(*) or column references. Recorded unresolved;
	// bound after FROM.
	var outRefs []colRef
	countStar := false
	if ps.peekKeyword("COUNT") {
		ps.advance()
		if err := ps.expectSymbol("("); err != nil {
			return nil, err
		}
		if err := ps.expectSymbol("*"); err != nil {
			return nil, err
		}
		if err := ps.expectSymbol(")"); err != nil {
			return nil, err
		}
		countStar = true
	} else if ps.isSymbol("*") {
		ps.advance()
		countStar = true // SELECT *: treat as aggregate over all columns
	} else {
		for {
			ref, err := ps.parseColRef()
			if err != nil {
				return nil, err
			}
			outRefs = append(outRefs, ref)
			if ps.isSymbol(",") {
				ps.advance()
				continue
			}
			break
		}
	}

	if err := ps.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if err := ps.parseFrom(); err != nil {
		return nil, err
	}
	s.Tables = append([]string(nil), ps.tables...)

	if !countStar {
		for _, ref := range outRefs {
			table, col, err := ps.resolve(ref)
			if err != nil {
				return nil, err
			}
			s.Output = append(s.Output, stmt.OutputCol{Table: table, Column: col.Name})
		}
	}

	if ps.peekKeyword("WHERE") {
		ps.advance()
		if err := ps.parseConjunction(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// parseUpdate parses an UPDATE statement.
func (ps *parseState) parseUpdate() (*stmt.Statement, error) {
	if err := ps.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	qn, err := ps.parseTableName()
	if err != nil {
		return nil, err
	}
	ps.tables = []string{qn}
	ps.aliases = map[string]string{qn: qn}
	if dot := strings.IndexByte(qn, '.'); dot >= 0 {
		ps.aliases[qn[dot+1:]] = qn
	}

	s := &stmt.Statement{Kind: stmt.Update, Tables: []string{qn}}
	if err := ps.expectKeyword("SET"); err != nil {
		return nil, err
	}
	table := ps.p.cat.MustTable(qn)
	for {
		t := ps.peek()
		if t.kind != tokIdent {
			return nil, &Error{Pos: t.pos, Msg: "expected column name in SET"}
		}
		ps.advance()
		if !table.HasColumn(t.text) {
			return nil, &Error{Pos: t.pos,
				Msg: fmt.Sprintf("column %s not in table %s", t.text, qn)}
		}
		s.SetColumns = append(s.SetColumns, t.text)
		if err := ps.expectSymbol("="); err != nil {
			return nil, err
		}
		// The assigned expression does not affect tuning; skip tokens
		// until a top-level comma or WHERE.
		if err := ps.skipExpr(); err != nil {
			return nil, err
		}
		if ps.isSymbol(",") {
			ps.advance()
			continue
		}
		break
	}
	if ps.peekKeyword("WHERE") {
		ps.advance()
		if err := ps.parseConjunction(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// skipExpr consumes an assigned expression up to a top-level ',' or WHERE
// or EOF.
func (ps *parseState) skipExpr() error {
	depth := 0
	consumed := 0
	for {
		t := ps.peek()
		switch {
		case t.kind == tokEOF:
			if consumed == 0 {
				return &Error{Pos: t.pos, Msg: "expected expression"}
			}
			return nil
		case t.kind == tokSymbol && t.text == "(":
			depth++
		case t.kind == tokSymbol && t.text == ")":
			if depth == 0 {
				return &Error{Pos: t.pos, Msg: "unbalanced ')'"}
			}
			depth--
		case depth == 0 && t.kind == tokSymbol && t.text == ",":
			if consumed == 0 {
				return &Error{Pos: t.pos, Msg: "expected expression"}
			}
			return nil
		case depth == 0 && t.kind == tokIdent && strings.EqualFold(t.text, "WHERE"):
			if consumed == 0 {
				return &Error{Pos: t.pos, Msg: "expected expression"}
			}
			return nil
		}
		ps.advance()
		consumed++
	}
}

// parseConjunction parses cond (AND cond)* into predicates and joins.
func (ps *parseState) parseConjunction(s *stmt.Statement) error {
	for {
		if err := ps.parseCond(s); err != nil {
			return err
		}
		if ps.peekKeyword("AND") {
			ps.advance()
			continue
		}
		return nil
	}
}

// parseCond parses one condition: col BETWEEN v AND v, col = value,
// col = col (join), or col </>/<=/>= value.
func (ps *parseState) parseCond(s *stmt.Statement) error {
	left, err := ps.parseColRef()
	if err != nil {
		return err
	}
	table, col, err := ps.resolve(left)
	if err != nil {
		return err
	}

	switch t := ps.peek(); {
	case ps.peekKeyword("BETWEEN"):
		ps.advance()
		lo, loStr, err := ps.parseValue()
		if err != nil {
			return err
		}
		if err := ps.expectKeyword("AND"); err != nil {
			return err
		}
		hi, hiStr, err := ps.parseValue()
		if err != nil {
			return err
		}
		sel := stringRangeSelectivity
		if !loStr && !hiStr {
			sel = catalog.RangeSelectivity(col, lo, hi)
		}
		s.Preds = append(s.Preds, stmt.Pred{
			Table: table, Column: col.Name, Selectivity: clampSel(sel),
		})
		return nil

	case t.kind == tokSymbol && t.text == "=":
		ps.advance()
		// Join or equality?
		if next := ps.peek(); next.kind == tokIdent {
			right, err := ps.parseColRef()
			if err != nil {
				return err
			}
			rTable, rCol, err := ps.resolve(right)
			if err != nil {
				return err
			}
			if rTable == table {
				return &Error{Pos: right.pos, Msg: "self-joins are not supported"}
			}
			s.Joins = append(s.Joins, stmt.Join{
				LeftTable: table, LeftColumn: col.Name,
				RightTable: rTable, RightColumn: rCol.Name,
			})
			return nil
		}
		_, _, err := ps.parseValue()
		if err != nil {
			return err
		}
		s.Preds = append(s.Preds, stmt.Pred{
			Table: table, Column: col.Name, Eq: true,
			Selectivity: clampSel(catalog.EqSelectivity(col)),
		})
		return nil

	case t.kind == tokSymbol && t.text == "<",
		t.kind == tokSymbol && t.text == ">",
		t.kind == tokLE, t.kind == tokGE:
		op := t.text
		ps.advance()
		v, isStr, err := ps.parseValue()
		if err != nil {
			return err
		}
		sel := stringRangeSelectivity
		if !isStr {
			if op == "<" || op == "<=" {
				sel = catalog.RangeSelectivity(col, col.Min, v)
			} else {
				sel = catalog.RangeSelectivity(col, v, col.Max)
			}
		}
		s.Preds = append(s.Preds, stmt.Pred{
			Table: table, Column: col.Name, Selectivity: clampSel(sel),
		})
		return nil
	}
	return &Error{Pos: ps.peek().pos, Msg: "expected comparison operator"}
}

// parseValue parses a numeric or string literal. isString reports string
// literals, whose numeric value is meaningless.
func (ps *parseState) parseValue() (v float64, isString bool, err error) {
	t := ps.peek()
	switch t.kind {
	case tokNumber:
		ps.advance()
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return 0, false, &Error{Pos: t.pos, Msg: "bad number " + t.text}
		}
		return v, false, nil
	case tokString:
		ps.advance()
		return 0, true, nil
	}
	return 0, false, &Error{Pos: t.pos, Msg: "expected literal value"}
}

// clampSel keeps estimated selectivities inside (0, 1].
func clampSel(sel float64) float64 {
	if sel <= 0 {
		return 1e-6
	}
	if sel > 1 {
		return 1
	}
	return sel
}
