package sqlmini

import (
	"math"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/stmt"
	"repro/internal/workload"
)

func newParser(t testing.TB) *Parser {
	t.Helper()
	cat, _ := datagen.Build()
	return NewParser(cat)
}

func TestParseCountStarWithJoin(t *testing.T) {
	p := newParser(t)
	s, err := p.Parse(`SELECT count(*)
		FROM tpce.security table1, tpce.company table2, tpce.daily_market table0
		WHERE table1.s_pe BETWEEN 63.278 AND 86.091
		AND table2.co_open_date BETWEEN 100 AND 200
		AND table1.s_symb = table0.dm_s_symb
		AND table2.co_id = table1.s_co_id`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != stmt.Query {
		t.Fatalf("kind = %v", s.Kind)
	}
	if len(s.Tables) != 3 {
		t.Fatalf("tables = %v", s.Tables)
	}
	if len(s.Joins) != 2 {
		t.Fatalf("joins = %v", s.Joins)
	}
	if len(s.Preds) != 2 {
		t.Fatalf("preds = %v", s.Preds)
	}
	for _, pr := range s.Preds {
		if pr.Selectivity <= 0 || pr.Selectivity > 1 {
			t.Fatalf("bad selectivity %v", pr)
		}
	}
}

func TestParseSelectivityEstimation(t *testing.T) {
	p := newParser(t)
	// l_quantity domain is [1, 50]; BETWEEN 1 AND 25 covers about half.
	s, err := p.Parse("SELECT count(*) FROM tpch.lineitem WHERE l_quantity BETWEEN 1 AND 25.5")
	if err != nil {
		t.Fatal(err)
	}
	got := s.Preds[0].Selectivity
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("selectivity = %v, want ≈ 0.5", got)
	}
}

func TestParseEqualitySelectivity(t *testing.T) {
	p := newParser(t)
	s, err := p.Parse("SELECT count(*) FROM tpch.part WHERE p_size = 10")
	if err != nil {
		t.Fatal(err)
	}
	pr := s.Preds[0]
	if !pr.Eq {
		t.Fatalf("expected equality predicate")
	}
	// p_size has 50 distinct values.
	if math.Abs(pr.Selectivity-0.02) > 1e-9 {
		t.Fatalf("selectivity = %v, want 0.02", pr.Selectivity)
	}
}

func TestParseStringRange(t *testing.T) {
	p := newParser(t)
	s, err := p.Parse(`SELECT count(*) FROM tpce.security
		WHERE s_exch_date BETWEEN '1995-05-12-01.46.40' AND '2006-07-10-01.46.40'`)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Preds[0].Selectivity; got != stringRangeSelectivity {
		t.Fatalf("string range selectivity = %v, want default %v", got, stringRangeSelectivity)
	}
}

func TestParseHalfOpenRanges(t *testing.T) {
	p := newParser(t)
	lt, err := p.Parse("SELECT count(*) FROM tpch.lineitem WHERE l_quantity < 11")
	if err != nil {
		t.Fatal(err)
	}
	gt, err := p.Parse("SELECT count(*) FROM tpch.lineitem WHERE l_quantity >= 11")
	if err != nil {
		t.Fatal(err)
	}
	sLT, sGT := lt.Preds[0].Selectivity, gt.Preds[0].Selectivity
	if sLT <= 0 || sGT <= 0 {
		t.Fatalf("non-positive selectivities %v %v", sLT, sGT)
	}
	if math.Abs(sLT+sGT-1) > 0.1 {
		t.Fatalf("complementary ranges should roughly cover the domain: %v + %v", sLT, sGT)
	}
}

func TestParseProjection(t *testing.T) {
	p := newParser(t)
	s, err := p.Parse("SELECT l_quantity, l_tax FROM tpch.lineitem WHERE l_shipdate BETWEEN 0 AND 10")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Output) != 2 {
		t.Fatalf("output = %v", s.Output)
	}
	needed := s.NeededColumns("tpch.lineitem")
	joined := strings.Join(needed, ",")
	for _, want := range []string{"l_quantity", "l_tax", "l_shipdate"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("needed columns %v missing %s", needed, want)
		}
	}
}

func TestParseBareTableName(t *testing.T) {
	p := newParser(t)
	s, err := p.Parse("SELECT count(*) FROM lineitem WHERE l_quantity < 5")
	if err != nil {
		t.Fatal(err)
	}
	if s.Tables[0] != "tpch.lineitem" {
		t.Fatalf("resolved table = %v", s.Tables[0])
	}
}

func TestParseAmbiguousTableName(t *testing.T) {
	p := newParser(t)
	// "customer" exists in tpcc, tpch and tpce.
	if _, err := p.Parse("SELECT count(*) FROM customer"); err == nil {
		t.Fatalf("ambiguous bare table accepted")
	}
}

func TestParseUpdate(t *testing.T) {
	p := newParser(t)
	s, err := p.Parse(`UPDATE tpch.lineitem
		SET l_tax = l_tax + 0.000001
		WHERE l_extendedprice BETWEEN 65522.378 AND 66256.943`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind != stmt.Update {
		t.Fatalf("kind = %v", s.Kind)
	}
	if len(s.SetColumns) != 1 || s.SetColumns[0] != "l_tax" {
		t.Fatalf("set columns = %v", s.SetColumns)
	}
	if len(s.Preds) != 1 {
		t.Fatalf("preds = %v", s.Preds)
	}
}

func TestParseUpdateMultipleAssignments(t *testing.T) {
	p := newParser(t)
	s, err := p.Parse(`UPDATE tpcc.stock SET s_quantity = s_quantity - 5, s_ytd = s_ytd + 5
		WHERE s_i_id = 77`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.SetColumns) != 2 {
		t.Fatalf("set columns = %v", s.SetColumns)
	}
}

func TestParseUpdateWithFunctionCall(t *testing.T) {
	p := newParser(t)
	// Mirrors the paper's example update with RANDOM_SIGN().
	s, err := p.Parse(`UPDATE tpch.lineitem
		SET l_tax = l_tax + RANDOM_SIGN()*0.000001
		WHERE l_extendedprice BETWEEN 65522.378 AND 66256.943`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.SetColumns) != 1 {
		t.Fatalf("set columns = %v", s.SetColumns)
	}
}

func TestParseErrors(t *testing.T) {
	p := newParser(t)
	cases := []struct {
		name string
		sql  string
	}{
		{"empty", ""},
		{"unknown table", "SELECT count(*) FROM tpch.nosuch"},
		{"unknown column", "SELECT count(*) FROM tpch.lineitem WHERE nope = 1"},
		{"ambiguous column", "SELECT count(*) FROM tpcc.customer c1, tpce.customer c2 WHERE c_id = 3"},
		{"bad operator", "SELECT count(*) FROM tpch.lineitem WHERE l_quantity LIKE 5"},
		{"unterminated string", "SELECT count(*) FROM tpch.lineitem WHERE l_shipdate = 'oops"},
		{"trailing garbage", "SELECT count(*) FROM tpch.lineitem WHERE l_quantity < 5 ORDER"},
		{"self join", "SELECT count(*) FROM tpch.lineitem WHERE l_partkey = l_suppkey"},
		{"missing from", "SELECT count(*)"},
		{"update missing set", "UPDATE tpch.lineitem WHERE l_tax = 1"},
		{"update unknown set col", "UPDATE tpch.lineitem SET zzz = 1"},
	}
	for _, c := range cases {
		if _, err := p.Parse(c.sql); err == nil {
			t.Errorf("%s: parse succeeded unexpectedly", c.name)
		}
	}
}

func TestParseKeywordsCaseInsensitive(t *testing.T) {
	p := newParser(t)
	if _, err := p.Parse("select COUNT(*) from tpch.lineitem where l_quantity between 1 and 2"); err != nil {
		t.Fatal(err)
	}
}

// TestRoundTripGeneratedWorkload parses every SQL rendering the workload
// generator produces and checks structural agreement with the source
// statement.
func TestRoundTripGeneratedWorkload(t *testing.T) {
	cat, joins := datagen.Build()
	p := NewParser(cat)
	opts := workload.DefaultOptions()
	opts.Phases = 4
	opts.PerPhase = 25
	wl := workload.Generate(cat, joins, opts)
	for _, src := range wl.Statements {
		parsed, err := p.Parse(src.SQL)
		if err != nil {
			t.Fatalf("statement %d: parse %q: %v", src.ID, src.SQL, err)
		}
		if parsed.Kind != src.Kind {
			t.Fatalf("statement %d: kind mismatch", src.ID)
		}
		if len(parsed.Tables) != len(src.Tables) {
			t.Fatalf("statement %d: tables %v vs %v", src.ID, parsed.Tables, src.Tables)
		}
		if len(parsed.Joins) != len(src.Joins) {
			t.Fatalf("statement %d: joins %v vs %v", src.ID, parsed.Joins, src.Joins)
		}
		if len(parsed.Preds) != len(src.Preds) {
			t.Fatalf("statement %d: preds %v vs %v", src.ID, parsed.Preds, src.Preds)
		}
		// Selectivities are re-estimated from rendered literals; ranges
		// should land near the source values.
		for i, pp := range parsed.Preds {
			sp := src.Preds[i]
			if pp.Column != sp.Column || pp.Table != sp.Table {
				t.Fatalf("statement %d: pred %d mismatch: %v vs %v", src.ID, i, pp, sp)
			}
			if !sp.Eq {
				ratio := pp.Selectivity / sp.Selectivity
				if ratio < 0.5 || ratio > 2.0 {
					t.Errorf("statement %d: pred %d selectivity drift: %v vs %v",
						src.ID, i, pp.Selectivity, sp.Selectivity)
				}
			}
		}
	}
}
