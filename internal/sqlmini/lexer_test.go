package sqlmini

import "testing"

func lex(t *testing.T, src string) []token {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatalf("lexAll(%q): %v", src, err)
	}
	return toks
}

func TestLexIdentifiers(t *testing.T) {
	toks := lex(t, "select l_shipdate _x a1")
	want := []string{"select", "l_shipdate", "_x", "a1"}
	for i, w := range want {
		if toks[i].kind != tokIdent || toks[i].text != w {
			t.Fatalf("token %d = %+v, want ident %q", i, toks[i], w)
		}
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatalf("missing EOF token")
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"42":        "42",
		"3.14":      "3.14",
		"1e6":       "1e6",
		"2.5E-3":    "2.5E-3",
		"-7":        "-7",
		"65522.378": "65522.378",
	}
	for src, want := range cases {
		toks := lex(t, src)
		if toks[0].kind != tokNumber || toks[0].text != want {
			t.Errorf("lex(%q) = %+v, want number %q", src, toks[0], want)
		}
	}
}

func TestLexMinusBetweenNumbers(t *testing.T) {
	// "5 - 3" is a minus symbol, not a negative literal.
	toks := lex(t, "5 - 3")
	if toks[0].kind != tokNumber || toks[1].kind != tokSymbol || toks[1].text != "-" {
		t.Fatalf("tokens = %+v", toks[:3])
	}
}

func TestLexStrings(t *testing.T) {
	toks := lex(t, "'1995-05-12-01.46.40'")
	if toks[0].kind != tokString || toks[0].text != "1995-05-12-01.46.40" {
		t.Fatalf("string token = %+v", toks[0])
	}
	if _, err := lexAll("'unterminated"); err == nil {
		t.Fatalf("unterminated string lexed")
	}
}

func TestLexOperators(t *testing.T) {
	toks := lex(t, "< <= > >= <> != = ( ) , . *")
	wantKinds := []tokenKind{
		tokSymbol, tokLE, tokSymbol, tokGE, tokNE, tokNE, tokSymbol,
		tokSymbol, tokSymbol, tokSymbol, tokSymbol, tokSymbol,
	}
	for i, k := range wantKinds {
		if toks[i].kind != k {
			t.Fatalf("token %d = %+v, want kind %d", i, toks[i], k)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lex(t, "ab  cd")
	if toks[0].pos != 0 || toks[1].pos != 4 {
		t.Fatalf("positions = %d, %d", toks[0].pos, toks[1].pos)
	}
}

func TestLexRejectsGarbage(t *testing.T) {
	for _, src := range []string{"$", "`", "a ; b", "{", "!x"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q) succeeded", src)
		}
	}
}

func TestErrorMessageIncludesPosition(t *testing.T) {
	_, err := lexAll("abc $")
	if err == nil {
		t.Fatalf("expected error")
	}
	if e, ok := err.(*Error); !ok || e.Pos != 4 {
		t.Fatalf("error = %#v, want *Error at 4", err)
	}
}
