// Package sqlmini parses the SQL subset used by the benchmark workloads —
// conjunctive SELECT queries with equi-joins and range/equality
// predicates, and single-table UPDATE statements — into the logical
// statement model, estimating predicate selectivities from catalog
// statistics. It is the front door for the interactive advisor and for
// replaying workload files.
package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // single-char punctuation: ( ) , . * = < >
	tokLE     // <=
	tokGE     // >=
	tokNE     // <> or !=
)

// token is one lexical element.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// Error is a parse error with position information.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("sqlmini: position %d: %s", e.Pos, e.Msg)
}

// lexer scans SQL text into tokens.
type lexer struct {
	src []rune
	pos int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src)}
}

func (l *lexer) errf(pos int, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]

	switch {
	case unicode.IsLetter(c) || c == '_':
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) ||
			unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		return token{kind: tokIdent, text: string(l.src[start:l.pos]), pos: start}, nil

	case unicode.IsDigit(c) || (c == '-' && l.pos+1 < len(l.src) && unicode.IsDigit(l.src[l.pos+1])):
		if c == '-' {
			l.pos++
		}
		seenDot, seenExp := false, false
		for l.pos < len(l.src) {
			d := l.src[l.pos]
			switch {
			case unicode.IsDigit(d):
			case d == '.' && !seenDot && !seenExp:
				seenDot = true
			case (d == 'e' || d == 'E') && !seenExp:
				seenExp = true
				if l.pos+1 < len(l.src) && (l.src[l.pos+1] == '+' || l.src[l.pos+1] == '-') {
					l.pos++
				}
			default:
				return token{kind: tokNumber, text: string(l.src[start:l.pos]), pos: start}, nil
			}
			l.pos++
		}
		return token{kind: tokNumber, text: string(l.src[start:l.pos]), pos: start}, nil

	case c == '\'':
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '\'' {
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, l.errf(start, "unterminated string literal")
		}
		text := string(l.src[start+1 : l.pos])
		l.pos++
		return token{kind: tokString, text: text, pos: start}, nil

	case c == '<':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokLE, text: "<=", pos: start}, nil
		}
		if l.pos < len(l.src) && l.src[l.pos] == '>' {
			l.pos++
			return token{kind: tokNE, text: "<>", pos: start}, nil
		}
		return token{kind: tokSymbol, text: "<", pos: start}, nil

	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokGE, text: ">=", pos: start}, nil
		}
		return token{kind: tokSymbol, text: ">", pos: start}, nil

	case c == '!':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{kind: tokNE, text: "!=", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected character %q", c)

	case strings.ContainsRune("(),.*=+-/", c):
		l.pos++
		return token{kind: tokSymbol, text: string(c), pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", c)
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
