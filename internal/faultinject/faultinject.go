// Package faultinject is the deterministic fault layer the replication
// and failover tests thread under the service's I/O paths: named fault
// points with counted plans (fail the next N hits, tear a write after K
// bytes, delay, hang) evaluated in FIFO order, plus an http.RoundTripper
// wrapper for client-side network faults (dropped connections, half-open
// stalls, partitions).
//
// Plans are counted rather than probabilistic so tests are reproducible:
// the Nth WAL write tears, the first three ship attempts fail, and
// nothing else happens. An Injector with no armed plan is free at every
// point — production code paths carry a nil Injector and pay one nil
// check.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Kind classifies what an armed fault does when hit.
type Kind int

const (
	// KindFail returns the plan's error without performing the operation.
	KindFail Kind = iota
	// KindTorn performs a prefix of the operation (KeepBytes of a write)
	// and then returns the plan's error — the signature of a crash
	// mid-write.
	KindTorn
	// KindDelay sleeps for Delay, then lets the operation proceed.
	KindDelay
	// KindHang blocks until the operation's context is done (or forever
	// for context-free operations with no Deadline), modeling a half-open
	// connection or a network partition.
	KindHang
)

// ErrInjected is the default error returned by armed faults.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault is one armed behavior at a point. Count hits consume it.
type Fault struct {
	Kind Kind
	// Count is how many hits this fault covers (min 1).
	Count int
	// Skip passes this many hits through before the fault arms.
	Skip int
	// Err is returned by KindFail/KindTorn hits (default ErrInjected).
	Err error
	// KeepBytes is how much of a torn write reaches the medium.
	KeepBytes int
	// Delay is the KindDelay sleep.
	Delay time.Duration
}

// Injector holds the armed plans, keyed by point name. The zero value is
// unusable; New allocates one. A nil *Injector is valid and never fires.
type Injector struct {
	mu    sync.Mutex
	plans map[string][]*Fault
	hits  map[string]int
	fired map[string]int
}

// New returns an empty injector.
func New() *Injector {
	return &Injector{
		plans: make(map[string][]*Fault),
		hits:  make(map[string]int),
		fired: make(map[string]int),
	}
}

// Plan arms a fault at a point. Plans at the same point consume hits in
// FIFO order; each hit first satisfies the head plan's Skip, then its
// Count, then the plan retires.
func (in *Injector) Plan(point string, f Fault) {
	if f.Count < 1 {
		f.Count = 1
	}
	if f.Err == nil {
		f.Err = fmt.Errorf("%w at %s", ErrInjected, point)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans[point] = append(in.plans[point], &f)
}

// FailN arms a plain failure for the next n hits of point.
func (in *Injector) FailN(point string, n int, err error) {
	in.Plan(point, Fault{Kind: KindFail, Count: n, Err: err})
}

// Clear disarms every plan at point (hit counters are kept).
func (in *Injector) Clear(point string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.plans, point)
}

// Hits returns how many times point was evaluated; Fired how many of
// those evaluations hit an armed fault.
func (in *Injector) Hits(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits[point]
}

// Fired returns how many evaluations of point hit an armed fault.
func (in *Injector) Fired(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[point]
}

// Eval consumes one hit of point and returns the fault that fires, or nil
// when the operation should proceed untouched. Safe on a nil Injector.
func (in *Injector) Eval(point string) *Fault {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[point]++
	queue := in.plans[point]
	if len(queue) == 0 {
		return nil
	}
	head := queue[0]
	if head.Skip > 0 {
		head.Skip--
		return nil
	}
	head.Count--
	if head.Count <= 0 {
		in.plans[point] = queue[1:]
	}
	in.fired[point]++
	return head
}

// Sleep performs a fault's delay/hang behavior for operations that carry
// a context. It returns the fault's error for KindFail/KindTorn (the
// caller handles KeepBytes itself), ctx.Err() for a hang that was
// cancelled, and nil when the operation should proceed.
func (f *Fault) Sleep(ctx context.Context) error {
	switch f.Kind {
	case KindDelay:
		t := time.NewTimer(f.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case KindHang:
		<-ctx.Done()
		return ctx.Err()
	default:
		return f.Err
	}
}

// Transport is an http.RoundTripper that evaluates Point before every
// request: KindFail drops the connection (the request never leaves),
// KindDelay adds latency, KindHang models a half-open connection or a
// partition (blocks until the request's context gives up). The replica
// shipper, the router, and the failover tests wrap their clients with it.
type Transport struct {
	Base  http.RoundTripper
	Inj   *Injector
	Point string
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f := t.Inj.Eval(t.Point); f != nil {
		switch f.Kind {
		case KindFail, KindTorn:
			return nil, f.Err
		default:
			if err := f.Sleep(req.Context()); err != nil {
				return nil, err
			}
		}
	}
	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}
