package faultinject

import (
	"time"

	"repro/internal/state"
)

// WALHooks builds state.WALHooks wired to an injector: writePoint is
// evaluated on every flushed frame buffer (KindFail drops the whole
// write, KindTorn lands KeepBytes of it first — the on-disk signature of
// a crash mid-write), syncPoint on every fsync. This is the layer the
// differential failover tests thread under the primary's WAL writer.
func WALHooks(in *Injector, writePoint, syncPoint string) *state.WALHooks {
	return &state.WALHooks{
		Write: func(p []byte, real func([]byte) (int, error)) (int, error) {
			f := in.Eval(writePoint)
			if f == nil {
				return real(p)
			}
			if f.Kind == KindTorn {
				keep := f.KeepBytes
				if keep > len(p) {
					keep = len(p)
				}
				real(p[:keep]) //nolint:errcheck // the injected error supersedes
				return keep, f.Err
			}
			return 0, f.Err
		},
		Sync: func(real func() error) error {
			f := in.Eval(syncPoint)
			if f == nil {
				return real()
			}
			if f.Kind == KindDelay {
				if err := f.Sleep(noDeadline{}); err != nil {
					return err
				}
				return real()
			}
			return f.Err
		},
	}
}

// noDeadline is a context that never cancels, for delay faults on
// operations that carry no context of their own.
type noDeadline struct{}

func (noDeadline) Deadline() (deadline time.Time, ok bool) { return time.Time{}, false }
func (noDeadline) Done() <-chan struct{}                   { return nil }
func (noDeadline) Err() error                              { return nil }
func (noDeadline) Value(key any) any                       { return nil }
