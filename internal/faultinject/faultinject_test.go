package faultinject

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestPlansConsumeInFIFOOrder(t *testing.T) {
	in := New()
	errA := errors.New("a")
	errB := errors.New("b")
	in.Plan("p", Fault{Kind: KindFail, Count: 2, Err: errA})
	in.Plan("p", Fault{Kind: KindFail, Count: 1, Err: errB})

	for i, want := range []error{errA, errA, errB} {
		f := in.Eval("p")
		if f == nil || f.Err != want {
			t.Fatalf("hit %d: got %v, want %v", i, f, want)
		}
	}
	if f := in.Eval("p"); f != nil {
		t.Fatalf("exhausted plans still fire: %+v", f)
	}
	if got := in.Hits("p"); got != 4 {
		t.Fatalf("hits = %d, want 4", got)
	}
	if got := in.Fired("p"); got != 3 {
		t.Fatalf("fired = %d, want 3", got)
	}
}

func TestSkipArmsLater(t *testing.T) {
	in := New()
	in.Plan("wal.write", Fault{Kind: KindTorn, Skip: 2, KeepBytes: 5})
	if f := in.Eval("wal.write"); f != nil {
		t.Fatal("fired during skip window")
	}
	if f := in.Eval("wal.write"); f != nil {
		t.Fatal("fired during skip window")
	}
	f := in.Eval("wal.write")
	if f == nil || f.Kind != KindTorn || f.KeepBytes != 5 {
		t.Fatalf("torn fault not armed after skip: %+v", f)
	}
}

func TestNilInjectorIsFree(t *testing.T) {
	var in *Injector
	if f := in.Eval("anything"); f != nil {
		t.Fatal("nil injector fired")
	}
	if in.Hits("anything") != 0 || in.Fired("anything") != 0 {
		t.Fatal("nil injector counted")
	}
}

func TestTransportFaults(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer ts.Close()

	in := New()
	in.FailN("net", 1, nil)
	client := &http.Client{Transport: &Transport{Inj: in, Point: "net"}}

	if _, err := client.Get(ts.URL); !errors.Is(err, ErrInjected) {
		t.Fatalf("first request did not fail with the injected error: %v", err)
	}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatalf("second request should pass through: %v", err)
	}
	resp.Body.Close()

	// A hang blocks until the request context gives up — the half-open
	// connection / partition model.
	in.Plan("net", Fault{Kind: KindHang})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL, nil)
	start := time.Now()
	if _, err := client.Do(req); err == nil {
		t.Fatal("hung request returned without error")
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("hang returned before the context deadline")
	}
}
