// What-if explorer: a tour of the DBMS substrate underneath WFIT.
//
// This example prices one join query under several hypothetical index
// configurations through the what-if optimizer, builds the query's Index
// Benefit Graph, and prints the benefit and degree-of-interaction
// analysis that drives WFIT's candidate selection and stable partition.
//
// Run with: go run ./examples/whatif_explorer
package main

import (
	"fmt"
	"log"

	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/ibg"
	"repro/internal/index"
	"repro/internal/sqlmini"
	"repro/internal/whatif"
)

func main() {
	cat, _ := datagen.Build()
	reg := index.NewRegistry()
	model := cost.NewModel(cat, reg, cost.DefaultParams())
	optimizer := whatif.New(model)

	parser := sqlmini.NewParser(cat)
	q, err := parser.Parse(`SELECT count(*) FROM tpch.orders o, tpch.lineitem l
		WHERE o.o_orderdate BETWEEN 600 AND 612
		  AND l.l_shipdate BETWEEN 800 AND 815
		  AND l.l_orderkey = o.o_orderkey`)
	if err != nil {
		log.Fatal(err)
	}
	q.ID = 1

	intern := func(table string, cols ...string) index.ID {
		return reg.Intern(cost.BuildIndexProto(cat, model.Params(), table, cols))
	}
	ixDate := intern("tpch.orders", "o_orderdate")
	ixShip := intern("tpch.lineitem", "l_shipdate")
	ixJoin := intern("tpch.lineitem", "l_orderkey")
	ixComp := intern("tpch.lineitem", "l_orderkey", "l_shipdate")

	fmt.Println("query:", q.SQL)
	fmt.Println("\nwhat-if costs under hypothetical configurations:")
	configs := []struct {
		name string
		cfg  index.Set
	}{
		{"no indices", index.EmptySet},
		{"orders(o_orderdate)", index.NewSet(ixDate)},
		{"lineitem(l_orderkey)", index.NewSet(ixJoin)},
		{"both", index.NewSet(ixDate, ixJoin)},
		{"both + lineitem(l_shipdate)", index.NewSet(ixDate, ixJoin, ixShip)},
		{"orders(o_orderdate) + composite", index.NewSet(ixDate, ixComp)},
		{"everything", index.NewSet(ixDate, ixJoin, ixShip, ixComp)},
	}
	for _, c := range configs {
		cst, used := model.CostUsed(q, c.cfg)
		fmt.Printf("  %-34s cost=%10.0f  used=%s\n", c.name, cst, used.Format(reg))
	}

	// The IBG encodes all of the above (and every other subset) from a
	// handful of optimizer calls.
	optimizer.ResetStats()
	g := ibg.Build(optimizer, q, index.NewSet(ixDate, ixShip, ixJoin, ixComp))
	fmt.Printf("\nindex benefit graph: %d nodes (= %d what-if calls) cover all %d configurations\n",
		g.NodeCount(), optimizer.Calls(), 1<<g.Top().Len())

	fmt.Println("\nper-index maximum benefit (βn of chooseCands):")
	g.Top().Each(func(id index.ID) {
		fmt.Printf("  %-38s %12.0f\n", reg.Get(id).Key(), g.MaxBenefit(id))
	})

	fmt.Println("\ndegrees of interaction (doi) — the raw material of stable partitions:")
	for _, in := range g.Interactions(0) {
		fmt.Printf("  %-38s × %-38s doi=%.0f\n",
			reg.Get(in.A).Key(), reg.Get(in.B).Key(), in.Doi)
	}
	fmt.Println("\nindices with doi = 0 between them can be tuned in separate WFA parts;")
	fmt.Println("interacting ones must share a part (or the interaction is knowingly dropped).")
}
