// Quickstart: the minimal semi-automatic tuning loop.
//
// A WFIT tuner watches a short SQL workload arrive one statement at a
// time and prints its index recommendation after each statement — the
// core loop of the semi-automatic paradigm, with the DBA free to inspect
// (and, in the other examples, veto) every choice.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/sqlmini"
	"repro/internal/whatif"
)

func main() {
	// The simulated DBMS: catalog with statistics, analytical what-if
	// optimizer, and a SQL front end.
	cat, _ := datagen.Build()
	reg := index.NewRegistry()
	model := cost.NewModel(cat, reg, cost.DefaultParams())
	optimizer := whatif.New(model)
	parser := sqlmini.NewParser(cat)

	// The semi-automatic tuner with the paper's default knobs
	// (idxCnt=40, stateCnt=500, histSize=100).
	tuner := core.NewWFIT(optimizer, core.DefaultOptions())

	workload := []string{
		`SELECT count(*) FROM tpch.lineitem WHERE l_shipdate BETWEEN 100 AND 120`,
		`SELECT count(*) FROM tpch.lineitem WHERE l_shipdate BETWEEN 300 AND 330`,
		`SELECT count(*) FROM tpch.orders o, tpch.lineitem l
		   WHERE o.o_orderdate BETWEEN 500 AND 520 AND l.l_orderkey = o.o_orderkey`,
		`SELECT count(*) FROM tpch.orders o, tpch.lineitem l
		   WHERE o.o_orderdate BETWEEN 710 AND 740 AND l.l_orderkey = o.o_orderkey`,
		`UPDATE tpch.lineitem SET l_tax = l_tax + 0.000001
		   WHERE l_extendedprice BETWEEN 65522.378 AND 65712.419`,
		`SELECT count(*) FROM tpch.part WHERE p_size = 14 AND p_retailprice BETWEEN 1000 AND 1020`,
	}

	for i, sql := range workload {
		s, err := parser.Parse(sql)
		if err != nil {
			log.Fatalf("statement %d: %v", i+1, err)
		}
		s.ID = i + 1
		tuner.AnalyzeQuery(s)
		fmt.Printf("statement %d (%s):\n  recommendation: %s\n",
			s.ID, s.Kind, tuner.Recommend().Format(reg))
	}

	fmt.Printf("\nafter %d statements: %d candidate indices mined, %d what-if calls, partition of %d parts\n",
		tuner.StatementsSeen(), tuner.UniverseSize(), optimizer.Calls(), len(tuner.Partition()))
}
