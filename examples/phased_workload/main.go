// Phased workload: online adaptation across workload shifts.
//
// This example generates a miniature version of the benchmark workload
// (four phases rotating across datasets, with updates mixed in) and runs
// the full WFIT online. It prints, per phase, which tables the
// recommendation covers — showing the tuner following the workload focus —
// and compares total work against never indexing at all.
//
// Run with: go run ./examples/phased_workload
package main

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/whatif"
	"repro/internal/workload"
)

func main() {
	cat, joins := datagen.Build()
	reg := index.NewRegistry()
	model := cost.NewModel(cat, reg, cost.DefaultParams())
	optimizer := whatif.New(model)

	opts := workload.DefaultOptions()
	opts.Phases = 4
	opts.PerPhase = 60
	opts.Seed = 11
	wl := workload.Generate(cat, joins, opts)

	tuner := core.NewWFIT(optimizer, core.DefaultOptions())

	var totalTuned, totalBare float64
	materialized := index.EmptySet
	created := make(map[int]map[string]int) // phase -> dataset -> creations
	dropped := make(map[int]int)

	for i, s := range wl.Statements {
		tuner.AnalyzeQuery(s)
		rec := tuner.Recommend()
		ph := wl.PhaseOf[i]
		if created[ph] == nil {
			created[ph] = make(map[string]int)
		}
		// The "DBA" here adopts every recommendation immediately.
		if !rec.Equal(materialized) {
			totalTuned += reg.Delta(materialized, rec)
			rec.Minus(materialized).Each(func(id index.ID) {
				created[ph][schemaOf(reg.Get(id).Table)]++
			})
			dropped[ph] += materialized.Minus(rec).Len()
			materialized = rec
			tuner.SetMaterialized(rec)
		}
		totalTuned += model.Cost(s, materialized)
		totalBare += model.Cost(s, index.EmptySet)
	}

	fmt.Println("index churn per phase (the tuner following the workload focus):")
	for ph := 0; ph < opts.Phases; ph++ {
		var parts []string
		var names []string
		for ds := range created[ph] {
			names = append(names, ds)
		}
		sort.Strings(names)
		for _, ds := range names {
			parts = append(parts, fmt.Sprintf("%s:%d", ds, created[ph][ds]))
		}
		if len(parts) == 0 {
			parts = append(parts, "none")
		}
		fmt.Printf("  phase %d: created %s, dropped %d\n",
			ph, strings.Join(parts, " "), dropped[ph])
	}

	fmt.Printf("\ntotal work with WFIT (incl. index builds): %.4g\n", totalTuned)
	fmt.Printf("total work with no indices at all:         %.4g\n", totalBare)
	fmt.Printf("speedup: %.2fx\n", totalBare/totalTuned)
	fmt.Printf("\ncandidates mined: %d; partition changes: %d; what-if calls: %d\n",
		tuner.UniverseSize(), tuner.Repartitions(), optimizer.Calls())
}

// schemaOf extracts the dataset prefix from a qualified table name.
func schemaOf(qualified string) string {
	if i := strings.IndexByte(qualified, '.'); i >= 0 {
		return qualified[:i]
	}
	return qualified
}
