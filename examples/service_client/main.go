// Service client: the semi-automatic tuning loop against wfit-serve.
//
// This example is living documentation for the HTTP/JSON API. It connects
// to a running wfit-serve (-addr), or starts one in-process when no
// address is given, then walks the whole DBA loop over the wire:
//
//  1. POST /sessions — create (or reattach to) a named session
//  2. POST /sessions/{id}/sql — stream a TPC-C slice of the benchmark
//     workload, batch by batch
//  3. GET  /sessions/{id}/recommendation — inspect what the tuner wants
//  4. POST /sessions/{id}/votes — cast an explicit positive vote
//  5. POST /sessions/{id}/accept — materialize the recommendation
//  6. POST /sessions/{id}/checkpoint + GET status — persist and summarize
//
// Because the server persists every session (snapshot + WAL), running
// this client, killing the server, restarting it, and running the client
// again continues the same session where it left off — the CI smoke test
// does exactly that.
//
// Run with: go run ./examples/service_client [-addr host:port] [-n 80]
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/datagen"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "", "wfit-serve address (empty: start an in-process server)")
	dataDir := flag.String("data", "", "data dir for the in-process server (default: a temp dir)")
	session := flag.String("session", "demo", "session name")
	n := flag.Int("n", 80, "number of TPC-C statements to stream")
	batch := flag.Int("batch", 10, "statements per ingest request")
	flag.Parse()

	base, shutdown, err := connectOrStart(*addr, *dataDir)
	if err != nil {
		log.Fatal(err)
	}
	defer shutdown()

	c := &client{base: base}

	// 1. Create the session; 409 means it already exists (e.g. a previous
	// run against the same server) and we simply continue it.
	created, err := c.post("/sessions", map[string]any{"name": *session, "idx_cnt": 24, "state_cnt": 300})
	switch {
	case err == nil:
		fmt.Printf("created session %q\n", *session)
		_ = created
	case strings.Contains(err.Error(), "409"):
		fmt.Printf("session %q already exists, continuing it\n", *session)
	default:
		log.Fatal(err)
	}

	// 2. Stream the TPC-C slice of the benchmark workload.
	sqls := tpccSlice(*n)
	fmt.Printf("streaming %d TPC-C statements in batches of %d ...\n", len(sqls), *batch)
	for at := 0; at < len(sqls); at += *batch {
		end := min(at+*batch, len(sqls))
		if _, err := c.post("/sessions/"+*session+"/sql", map[string]any{"sql": sqls[at:end]}); err != nil {
			log.Fatalf("ingest batch at %d: %v", at, err)
		}
	}

	// 3. Inspect the recommendation.
	rec, err := c.get("/sessions/" + *session + "/recommendation")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecommendation after the stream:")
	printIndexes(rec["recommendation"])

	// 4. The DBA disagrees about one index: vote the customer last-name
	// lookup in explicitly (a positive vote forces it into the
	// recommendation and biases future ones — §5.1).
	votes := map[string]any{"plus": []map[string]any{{
		"table":   "tpcc.customer",
		"columns": []string{"c_last"},
	}}}
	voted, err := c.post("/sessions/"+*session+"/votes", votes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nafter voting +tpcc.customer(c_last):")
	printIndexes(voted["recommendation"])

	// 5. Accept: materialize the recommendation (implicit feedback).
	accepted, err := c.post("/sessions/"+*session+"/accept", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naccepted: materialized %v indices (transition cost %.4g)\n",
		count(accepted["materialized"]), accepted["transition_cost"])

	// 6. Checkpoint and summarize.
	if _, err := c.post("/sessions/"+*session+"/checkpoint", nil); err != nil {
		log.Fatal(err)
	}
	status, err := c.get("/sessions/" + *session + "/status")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsession status: %.0f statements, %.0f candidates mined, %.0f repartitions, total work %.4g\n",
		status["statements"], status["universe_size"], status["repartitions"], status["total_work"])
}

// connectOrStart returns a base URL: the given address, or an in-process
// wfit-serve listening on a loopback port.
func connectOrStart(addr, dataDir string) (string, func(), error) {
	if addr != "" {
		return "http://" + strings.TrimPrefix(addr, "http://"), func() {}, nil
	}
	if dataDir == "" {
		dir, err := os.MkdirTemp("", "wfit-serve-demo-*")
		if err != nil {
			return "", nil, err
		}
		dataDir = dir
	}
	sv, err := server.New(server.Config{DataDir: dataDir})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sv.Close()
		return "", nil, err
	}
	hs := &http.Server{Handler: sv.Handler()}
	go hs.Serve(ln) //nolint:errcheck // closed on shutdown
	fmt.Printf("started in-process wfit-serve on %s (data dir %s)\n", ln.Addr(), dataDir)
	shutdown := func() {
		hs.Close()
		if err := sv.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "shutdown: %v\n", err)
		}
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// tpccSlice renders the TPC-C-only statements of the benchmark workload.
func tpccSlice(n int) []string {
	cat, joins := datagen.Build()
	opts := workload.DefaultOptions()
	opts.Phases = 2 // phases 0-1 focus on TPC-C (and its TPC-H overlap)
	opts.PerPhase = 400
	wl := workload.Generate(cat, joins, opts)
	var out []string
	for _, s := range wl.Statements {
		if len(out) >= n {
			break
		}
		tpccOnly := true
		for _, t := range s.Tables {
			if !strings.HasPrefix(t, "tpcc.") {
				tpccOnly = false
			}
		}
		if tpccOnly {
			out = append(out, s.SQL)
		}
	}
	return out
}

// client is a minimal JSON-over-HTTP helper with the retry discipline a
// replicated deployment expects of its clients: the service (and the
// router fronting it) answers 503 + Retry-After during a failover window
// instead of dropping work, so the client's job is to wait and resend. A
// 503 is always safe to retry — it means the request was refused before
// being applied. A transport error (connection reset when a node dies) is
// retried too, which makes the stream at-least-once; every operation this
// client sends tolerates that (and the session's WAL dedups re-shipped
// sequence numbers on the replica path).
type client struct {
	base string
}

// retry bounds: up to 6 attempts with jittered exponential backoff,
// capped per try, honoring a server-provided Retry-After.
const (
	retryAttempts = 6
	retryBase     = 200 * time.Millisecond
	retryMax      = 5 * time.Second
)

func (c *client) do(method, path string, body any) (map[string]any, error) {
	var payload []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		payload = b
	}
	backoff := retryBase
	var lastErr error
	for attempt := 0; attempt < retryAttempts; attempt++ {
		if attempt > 0 {
			sleep := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2))) //nolint:gosec // backoff spread
			fmt.Printf("  (retrying %s %s in %v: %v)\n", method, path, sleep.Round(time.Millisecond), lastErr)
			time.Sleep(sleep)
			if backoff *= 2; backoff > retryMax {
				backoff = retryMax
			}
		}
		out, err := c.once(method, path, payload)
		if err == nil {
			return out, nil
		}
		lastErr = err
		var re *retryableError
		if !errors.As(err, &re) {
			return nil, err
		}
		if re.after > backoff {
			backoff = re.after
		}
	}
	return nil, fmt.Errorf("%s %s: giving up after %d attempts: %w", method, path, retryAttempts, lastErr)
}

// retryableError marks a failure worth resending: a 503 (failover window)
// or a transport error. after carries the server's Retry-After wish.
type retryableError struct {
	err   error
	after time.Duration
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

func (c *client) once(method, path string, payload []byte) (map[string]any, error) {
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, &retryableError{err: err}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, &retryableError{err: err}
	}
	if resp.StatusCode >= 300 {
		httpErr := fmt.Errorf("%s %s: %d: %s", method, path, resp.StatusCode, bytes.TrimSpace(data))
		if resp.StatusCode == http.StatusServiceUnavailable {
			var after time.Duration
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
			return nil, &retryableError{err: httpErr, after: after}
		}
		return nil, httpErr
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s %s: decoding response: %w", method, path, err)
	}
	return out, nil
}

func (c *client) post(path string, body any) (map[string]any, error) {
	if body == nil {
		body = map[string]any{}
	}
	return c.do(http.MethodPost, path, body)
}

func (c *client) get(path string) (map[string]any, error) {
	return c.do(http.MethodGet, path, nil)
}

// printIndexes renders a recommendation payload.
func printIndexes(v any) {
	list, _ := v.([]any)
	if len(list) == 0 {
		fmt.Println("  (empty)")
		return
	}
	for _, e := range list {
		ix, _ := e.(map[string]any)
		cols, _ := ix["columns"].([]any)
		names := make([]string, 0, len(cols))
		for _, c := range cols {
			names = append(names, fmt.Sprint(c))
		}
		fmt.Printf("  %v(%s)\n", ix["table"], strings.Join(names, ","))
	}
}

// count returns the length of a JSON array value.
func count(v any) int {
	list, _ := v.([]any)
	return len(list)
}
