// DBA feedback: the scenario from the paper's introduction.
//
// The tuner recommends a set of indices. The DBA vetoes one that (say)
// "interacts poorly with the locking subsystem" (explicit negative vote)
// and endorses two alternatives (explicit positive votes). The example
// then shows both halves of the semi-automatic contract:
//
//  1. consistency — recommendations immediately honor the votes, and
//  2. recoverability — when the workload keeps contradicting the veto,
//     the tuner eventually overrides it.
//
// Run with: go run ./examples/dba_feedback
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/datagen"
	"repro/internal/index"
	"repro/internal/sqlmini"
	"repro/internal/whatif"
)

func main() {
	cat, _ := datagen.Build()
	reg := index.NewRegistry()
	model := cost.NewModel(cat, reg, cost.DefaultParams())
	optimizer := whatif.New(model)
	parser := sqlmini.NewParser(cat)
	tuner := core.NewWFIT(optimizer, core.DefaultOptions())

	analyze := func(id int, sql string) {
		s, err := parser.Parse(sql)
		if err != nil {
			log.Fatal(err)
		}
		s.ID = id
		tuner.AnalyzeQuery(s)
	}
	intern := func(table string, cols ...string) index.ID {
		return reg.Intern(cost.BuildIndexProto(cat, model.Params(), table, cols))
	}

	// A workload where trades are filtered by date and price: the tuner
	// will discover indices on tpce.trade.
	tradeQuery := `SELECT count(*) FROM tpce.trade
		WHERE t_dts BETWEEN 100000 AND 101000 AND t_bid_price BETWEEN 10 AND 12`
	for i := 1; i <= 6; i++ {
		analyze(i, tradeQuery)
	}
	fmt.Println("after the initial workload:")
	fmt.Println("  recommendation:", tuner.Recommend().Format(reg))

	// The DBA distrusts the composite index (past locking trouble) and
	// prefers the two single-column indices instead.
	composite := intern("tpce.trade", "t_dts", "t_bid_price")
	dts := intern("tpce.trade", "t_dts")
	price := intern("tpce.trade", "t_bid_price")

	fmt.Println("\nDBA votes: -tpce.trade(t_dts,t_bid_price)  +tpce.trade(t_dts)  +tpce.trade(t_bid_price)")
	tuner.Feedback(index.NewSet(dts, price), index.NewSet(composite))
	rec := tuner.Recommend()
	fmt.Println("  recommendation:", rec.Format(reg))
	if rec.Contains(composite) {
		log.Fatal("consistency violated: vetoed index still recommended")
	}
	if !rec.Contains(dts) || !rec.Contains(price) {
		log.Fatal("consistency violated: endorsed indices missing")
	}

	// The workload keeps running. The two endorsed singles are nearly as
	// good as the composite (index intersection), so the evidence against
	// the veto accumulates only slowly — the DBA's preference stands.
	fmt.Println("\nworkload continues; the endorsed singles are almost as good ...")
	overridden := -1
	for i := 7; i <= 30; i++ {
		analyze(i, tradeQuery)
		if tuner.Recommend().Contains(composite) {
			overridden = i
			break
		}
	}
	if overridden < 0 {
		fmt.Println("  the veto held: the alternative keeps the evidence below the override threshold")
	} else {
		fmt.Printf("  after statement %d the workload evidence overrode the veto\n", overridden)
	}

	// Now the DBA vetoes the singles too — leaving the hot query with no
	// index at all. That contradiction is expensive, and WFIT overrides
	// it quickly.
	fmt.Println("\nDBA votes: -tpce.trade(t_dts)  -tpce.trade(t_bid_price)   (vetoing every alternative)")
	tuner.Feedback(index.EmptySet, index.NewSet(dts, price))
	fmt.Println("  recommendation:", tuner.Recommend().Format(reg))
	overridden = -1
	for i := 31; i <= 90; i++ {
		analyze(i, tradeQuery)
		rec := tuner.Recommend()
		if rec.Contains(composite) || rec.Contains(dts) || rec.Contains(price) {
			overridden = i
			break
		}
	}
	if overridden < 0 {
		fmt.Println("  still no index after 60 statements (unexpected)")
	} else {
		fmt.Printf("  overridden after %d statements of foregone benefit:\n", overridden-30)
		fmt.Println("  recommendation:", tuner.Recommend().Format(reg))
	}

	// The reverse direction: endorsing an index the workload will not
	// support. The tuner honors the vote now and sheds it once updates
	// make it expensive.
	fmt.Println("\nDBA votes: +tpch.lineitem(l_tax) (misguided: l_tax is update-hot)")
	taxIdx := intern("tpch.lineitem", "l_tax")
	tuner.Feedback(index.NewSet(taxIdx), index.EmptySet)
	fmt.Println("  recommendation now includes it:", tuner.Recommend().Contains(taxIdx))

	dropped := -1
	for i := 61; i <= 140; i++ {
		analyze(i, `UPDATE tpch.lineitem SET l_tax = l_tax + 0.000001
			WHERE l_extendedprice BETWEEN 65522.378 AND 65712.419`)
		if !tuner.Recommend().Contains(taxIdx) {
			dropped = i
			break
		}
	}
	if dropped < 0 {
		fmt.Println("  endorsement still standing after 80 updates")
	} else {
		fmt.Printf("  recovered from the bad endorsement after %d update statements\n", dropped-60)
	}
}
